//! The DataStore facade: dedup-aware chunk placement over the buffer pool
//! and disk store (Alg. 4's storage path).

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mistique_compress::basedelta;
use mistique_dataframe::ColumnChunk;
use mistique_dedup::{content_digest, discretize, ContentDigest, LshIndex, MinHasher, Signature};
use mistique_obs::{Counter, Gauge, Histogram, Obs};

use crate::backend::{RealFs, StorageBackend};
use crate::disk::DiskStore;
use crate::lru::LruCache;
use crate::mem::InMemoryStore;
use crate::partition::{Partition, PartitionId};
use crate::StoreError;

/// Logical address of a ColumnChunk:
/// `project.model_intermediate.column` plus the RowBlock index —
/// the same key shape as the paper's `get_intermediates([keys])` API.
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ChunkKey {
    /// Intermediate id, conventionally `model.intermediate`.
    pub intermediate: String,
    /// Column name within the intermediate.
    pub column: String,
    /// RowBlock index.
    pub block: u32,
}

impl ChunkKey {
    /// Convenience constructor.
    pub fn new(intermediate: impl Into<String>, column: impl Into<String>, block: u32) -> Self {
        ChunkKey {
            intermediate: intermediate.into(),
            column: column.into(),
            block,
        }
    }
}

/// How chunks are routed to Partitions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlacementPolicy {
    /// TRAD policy: MinHash/LSH similarity clustering with threshold `tau`
    /// (Sec 4.2.1). Similar chunks share a partition and compress together.
    BySimilarity {
        /// Jaccard similarity threshold τ for joining an existing partition.
        tau: f64,
    },
    /// DNN policy: co-locate all columns of the same intermediate and skip
    /// similarity search (the paper's two DNN simplifications).
    ByIntermediate,
}

/// DataStore tuning knobs.
#[derive(Clone, Debug)]
pub struct DataStoreConfig {
    /// Chunk→Partition routing policy.
    pub policy: PlacementPolicy,
    /// InMemoryStore byte budget.
    pub mem_capacity: usize,
    /// A partition is sealed once it accumulates this many raw bytes.
    pub partition_target_bytes: usize,
    /// MinHash signature length (BySimilarity only).
    pub minhash_hashes: usize,
    /// LSH bands (bands * rows must equal `minhash_hashes`).
    pub lsh_bands: usize,
    /// Bin width used to discretize values before MinHashing.
    pub discretize_bin: f64,
    /// Cache partitions read back from disk (disable to measure raw reads).
    pub read_cache: bool,
    /// Store near-duplicate chunks as base+delta frames: a dedup put whose
    /// MinHash similarity to an already-stored chunk reaches `delta_tau`
    /// may be stored as the XOR difference against that chunk (the *base*)
    /// when the delta frame is actually smaller. Reads resolve the frame
    /// transparently; the base is refcount-pinned while deltas reference it.
    pub delta_enabled: bool,
    /// Minimum estimated Jaccard similarity for a stored chunk to serve as
    /// a delta base. Higher than the placement τ: a delta only pays off
    /// when the chunks are near-identical, not merely cluster-alike.
    pub delta_tau: f64,
}

impl Default for DataStoreConfig {
    fn default() -> Self {
        DataStoreConfig {
            policy: PlacementPolicy::BySimilarity { tau: 0.6 },
            mem_capacity: 64 << 20,
            partition_target_bytes: 1 << 20,
            minhash_hashes: 128,
            lsh_bands: 32,
            discretize_bin: 0.05,
            read_cache: true,
            delta_enabled: true,
            delta_tau: 0.8,
        }
    }
}

/// Counters describing what the store has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StoreStats {
    /// Bytes submitted across all `put_chunk` calls (the STORE_ALL volume).
    pub logical_bytes: u64,
    /// Bytes of unique chunks actually placed in partitions.
    pub unique_bytes: u64,
    /// Chunks that were exact-dedup hits.
    pub dedup_hits: u64,
    /// Chunks stored (unique).
    pub chunks_stored: u64,
    /// Partitions created.
    pub partitions_created: u64,
    /// Chunks placed into an existing partition via similarity.
    pub similarity_placements: u64,
    /// Chunks stored as base+delta frames (puts and reclaim re-encodes).
    #[serde(default)]
    pub delta_puts: u64,
    /// Raw bytes saved by storing delta frames instead of full chunks.
    #[serde(default)]
    pub delta_bytes_saved: u64,
}

/// What retracting an intermediate's chunk references released.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetractOutcome {
    /// Logical chunk keys removed from the catalog.
    pub keys_removed: u64,
    /// Raw chunk bytes whose last reference went away (now dead inside
    /// their partitions, reclaimable by [`DataStore::compact`]).
    pub bytes_released: u64,
}

/// What one [`DataStore::compact`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CompactionReport {
    /// Sealed on-disk partitions considered.
    pub partitions_scanned: u64,
    /// Partitions rewritten without their dead chunks.
    pub partitions_rewritten: u64,
    /// Fully-dead partitions whose files were removed.
    pub partitions_removed: u64,
    /// Raw (uncompressed) chunk bytes reclaimed.
    pub bytes_reclaimed: u64,
    /// Dead chunks dropped.
    pub chunks_dropped: u64,
}

impl CompactionReport {
    /// Merge another report into this one (a reclaim pass may compact more
    /// than once).
    pub fn absorb(&mut self, other: &CompactionReport) {
        self.partitions_scanned += other.partitions_scanned;
        self.partitions_rewritten += other.partitions_rewritten;
        self.partitions_removed += other.partitions_removed;
        self.bytes_reclaimed += other.bytes_reclaimed;
        self.chunks_dropped += other.chunks_dropped;
    }
}

/// What a [`DataStore::recover`] pass found and did. Every partition file in
/// the directory is accounted for: `partitions_ok + quarantined` covers the
/// on-disk set, and `missing` counts catalog references with no backing file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Partitions on disk whose integrity trailer verified.
    pub partitions_ok: u64,
    /// Partitions that failed verification and were set aside.
    pub quarantined: u64,
    /// Orphaned `*.tmp` files (crash mid-write) removed.
    pub orphans_removed: u64,
    /// Catalog-referenced partitions with no file on disk (and not open in
    /// the buffer pool) — e.g. a crash before the partition was sealed.
    pub missing: u64,
}

/// Cumulative read-path attribution: where chunk reads were served from and
/// how many compressed bytes came off disk per codec. Take one snapshot with
/// [`DataStore::read_attribution`] before a fetch and one after, then
/// [`ReadAttribution::since`] yields the activity of just that fetch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReadAttribution {
    /// Chunk gets issued.
    pub gets: u64,
    /// Serialized chunk bytes returned.
    pub bytes: u64,
    /// Gets served by an open partition in the buffer pool.
    pub mem_hits: u64,
    /// Gets served by the read cache.
    pub cache_hits: u64,
    /// Partition files read (and unsealed) from disk.
    pub disk_reads: u64,
    /// Distinct partitions consulted.
    pub partitions_touched: u64,
    /// Compressed bytes read off disk, per compression codec (sorted by
    /// codec name).
    pub codec_bytes: Vec<(String, u64)>,
}

impl ReadAttribution {
    /// The activity between `earlier` (an older snapshot of the same store)
    /// and `self`.
    pub fn since(&self, earlier: &ReadAttribution) -> ReadAttribution {
        ReadAttribution {
            gets: self.gets.saturating_sub(earlier.gets),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            mem_hits: self.mem_hits.saturating_sub(earlier.mem_hits),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            disk_reads: self.disk_reads.saturating_sub(earlier.disk_reads),
            partitions_touched: self
                .partitions_touched
                .saturating_sub(earlier.partitions_touched),
            codec_bytes: self
                .codec_bytes
                .iter()
                .map(|(codec, v)| {
                    let before = earlier
                        .codec_bytes
                        .iter()
                        .find(|(c, _)| c == codec)
                        .map(|(_, b)| *b)
                        .unwrap_or(0);
                    (codec.clone(), v.saturating_sub(before))
                })
                .filter(|(_, v)| *v > 0)
                .collect(),
        }
    }
}

/// Result of storing one chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PutOutcome {
    /// Identical bytes were already stored; only a reference was recorded.
    Deduplicated,
    /// Stored into the given partition.
    Stored(PartitionId),
}

/// Cached metric handles for the chunk hot paths, resolved once per `Obs`
/// so puts and gets never touch the registry lock.
struct StoreMetrics {
    put_count: Counter,
    put_bytes: Counter,
    put_ns: Histogram,
    get_count: Counter,
    get_bytes: Counter,
    get_ns: Histogram,
    dedup_exact_hits: Counter,
    similarity_placements: Counter,
    partitions_created: Counter,
    partitions_sealed: Counter,
    get_mem_hits: Counter,
    get_cache_hits: Counter,
    get_disk_reads: Counter,
    get_partitions_touched: Counter,
    pool_used_bytes: Gauge,
    pool_evictions: Counter,
    read_cache_hits: Counter,
    read_cache_misses: Counter,
    read_cache_evictions: Counter,
    read_cache_bytes: Gauge,
    compaction_runs: Counter,
    compaction_bytes_reclaimed: Counter,
    compaction_partitions_rewritten: Counter,
    delta_puts: Counter,
    delta_bytes_saved: Counter,
    delta_base_pins: Counter,
    delta_rehydrations: Counter,
}

impl StoreMetrics {
    fn new(obs: &Obs) -> StoreMetrics {
        StoreMetrics {
            put_count: obs.counter("store.put.count"),
            put_bytes: obs.counter("store.put.bytes"),
            put_ns: obs.histogram("store.put.ns"),
            get_count: obs.counter("store.get.count"),
            get_bytes: obs.counter("store.get.bytes"),
            get_ns: obs.histogram("store.get.ns"),
            dedup_exact_hits: obs.counter("store.dedup.exact_hits"),
            similarity_placements: obs.counter("store.dedup.similarity_placements"),
            partitions_created: obs.counter("store.partitions.created"),
            partitions_sealed: obs.counter("store.partitions.sealed"),
            get_mem_hits: obs.counter("store.get.mem_hits"),
            get_cache_hits: obs.counter("store.get.cache_hits"),
            get_disk_reads: obs.counter("store.get.disk_reads"),
            get_partitions_touched: obs.counter("store.get.partitions_touched"),
            pool_used_bytes: obs.gauge("store.pool.used_bytes"),
            pool_evictions: obs.counter("store.pool.evictions"),
            read_cache_hits: obs.counter("store.read_cache.hits"),
            read_cache_misses: obs.counter("store.read_cache.misses"),
            read_cache_evictions: obs.counter("store.read_cache.evictions"),
            read_cache_bytes: obs.gauge("store.read_cache.used_bytes"),
            compaction_runs: obs.counter("compaction.runs"),
            compaction_bytes_reclaimed: obs.counter("compaction.bytes_reclaimed"),
            compaction_partitions_rewritten: obs.counter("compaction.partitions_rewritten"),
            delta_puts: obs.counter("store.delta.puts"),
            delta_bytes_saved: obs.counter("store.delta.bytes_saved"),
            delta_base_pins: obs.counter("store.delta.base_pins"),
            delta_rehydrations: obs.counter("store.delta.rehydrations"),
        }
    }
}

/// The DataStore: exact dedup, similarity placement, buffer pool, disk.
pub struct DataStore {
    config: DataStoreConfig,
    obs: Obs,
    metrics: StoreMetrics,
    mem: InMemoryStore,
    disk: DiskStore,
    key_map: HashMap<ChunkKey, ContentDigest>,
    digest_loc: HashMap<ContentDigest, PartitionId>,
    /// Live references per digest: how many logical keys currently resolve
    /// to it. A digest whose count drops to zero is *dead* — still physically
    /// present in its partition, charged to `part_dead` until compaction.
    digest_refs: HashMap<ContentDigest, u32>,
    /// Serialized chunk length per digest (live-byte accounting).
    digest_len: HashMap<ContentDigest, u64>,
    /// Raw chunk bytes ever placed into each partition (dead + live).
    part_total: HashMap<PartitionId, u64>,
    /// Raw bytes of dead chunks per partition; drives the live-ratio test.
    part_dead: HashMap<PartitionId, u64>,
    sealed: HashSet<PartitionId>,
    next_partition: PartitionId,
    /// Per-intermediate open partition (ByIntermediate policy).
    open_by_intermediate: HashMap<String, PartitionId>,
    /// LSH over stored chunk signatures (BySimilarity placement, and —
    /// whatever the placement policy — delta base selection).
    lsh: LshIndex,
    minhasher: MinHasher,
    lsh_item_to_partition: HashMap<u64, PartitionId>,
    /// LSH item → content digest of the chunk it was computed from, so a
    /// similarity hit can name a concrete delta base.
    lsh_item_to_digest: HashMap<u64, ContentDigest>,
    next_lsh_item: u64,
    /// Delta digest → base digest for every chunk stored as a base+delta
    /// frame. Entries outlive the last reference (a dedup resurrect must
    /// re-pin the base) and are dropped only when compaction physically
    /// removes the delta's bytes.
    delta_base: HashMap<ContentDigest, ContentDigest>,
    /// Byte-budgeted LRU over partitions read back from disk; evicts one
    /// victim at a time (never a clear-all).
    read_cache: LruCache<PartitionId, Partition>,
    /// Partitions set aside by [`DataStore::recover`]; reads of chunks in
    /// them fail with [`StoreError::Quarantined`] instead of a decode error.
    quarantined: HashMap<PartitionId, String>,
    /// Cumulative compressed bytes read off disk, per codec (behind a mutex
    /// because parallel partition loads account from worker threads).
    codec_read_bytes: Mutex<HashMap<String, u64>>,
    stats: StoreStats,
}

impl DataStore {
    /// Open a DataStore persisting partitions under `dir` on the real
    /// filesystem.
    pub fn open(dir: impl AsRef<Path>, config: DataStoreConfig) -> Result<DataStore, StoreError> {
        Self::open_with_backend(dir, config, Arc::new(RealFs))
    }

    /// Open a DataStore over an explicit [`StorageBackend`] (fault injection
    /// in tests; the real filesystem in production).
    pub fn open_with_backend(
        dir: impl AsRef<Path>,
        config: DataStoreConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<DataStore, StoreError> {
        assert!(
            config.minhash_hashes.is_multiple_of(config.lsh_bands),
            "minhash_hashes must be divisible by lsh_bands"
        );
        let rows = config.minhash_hashes / config.lsh_bands;
        let obs = Obs::new();
        Ok(DataStore {
            metrics: StoreMetrics::new(&obs),
            obs,
            mem: InMemoryStore::new(config.mem_capacity),
            disk: DiskStore::open_with_backend(dir, backend)?,
            key_map: HashMap::new(),
            digest_loc: HashMap::new(),
            digest_refs: HashMap::new(),
            digest_len: HashMap::new(),
            part_total: HashMap::new(),
            part_dead: HashMap::new(),
            sealed: HashSet::new(),
            next_partition: 0,
            open_by_intermediate: HashMap::new(),
            lsh: LshIndex::new(config.lsh_bands, rows),
            minhasher: MinHasher::new(config.minhash_hashes),
            lsh_item_to_partition: HashMap::new(),
            lsh_item_to_digest: HashMap::new(),
            next_lsh_item: 0,
            delta_base: HashMap::new(),
            read_cache: LruCache::new(config.mem_capacity),
            quarantined: HashMap::new(),
            codec_read_bytes: Mutex::new(HashMap::new()),
            stats: StoreStats::default(),
            config,
        })
    }

    /// The storage backend partitions are written through.
    pub fn backend(&self) -> Arc<dyn StorageBackend> {
        Arc::clone(self.disk.backend())
    }

    /// Replace the store's observability handle (e.g. with one shared by the
    /// whole system) and re-resolve the cached metric handles against it.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        self.metrics = StoreMetrics::new(obs);
    }

    /// The store's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Cumulative read-path attribution so far. Snapshot before and after a
    /// fetch and diff with [`ReadAttribution::since`] to attribute store
    /// activity to one query.
    pub fn read_attribution(&self) -> ReadAttribution {
        let mut codec_bytes: Vec<(String, u64)> = self
            .codec_read_bytes
            .lock()
            .unwrap()
            .iter()
            .map(|(codec, v)| (codec.clone(), *v))
            .collect();
        codec_bytes.sort();
        ReadAttribution {
            gets: self.metrics.get_count.get(),
            bytes: self.metrics.get_bytes.get(),
            mem_hits: self.metrics.get_mem_hits.get(),
            cache_hits: self.metrics.get_cache_hits.get(),
            disk_reads: self.metrics.get_disk_reads.get(),
            partitions_touched: self.metrics.get_partitions_touched.get(),
            codec_bytes,
        }
    }

    /// Account compressed bytes coming off disk against their codec (feeds
    /// [`DataStore::read_attribution`] and the `read.codec.*` counters).
    /// Takes the pieces rather than `&self` so parallel partition-load
    /// workers can call it through shared references.
    fn note_codec_read(obs: &Obs, per_codec: &Mutex<HashMap<String, u64>>, sealed: &[u8]) {
        let codec = mistique_compress::scheme_of(sealed)
            .map(|s| s.name())
            .unwrap_or("unknown");
        *per_codec
            .lock()
            .unwrap()
            .entry(codec.to_string())
            .or_insert(0) += sealed.len() as u64;
        obs.counter(&format!("read.codec.{codec}.bytes"))
            .add(sealed.len() as u64);
        obs.counter(&format!("read.codec.{codec}.count")).inc();
    }

    /// Store one chunk under its logical key using the configured placement
    /// policy. Identical chunk bytes seen before are not stored again
    /// (exact dedup).
    pub fn put_chunk(
        &mut self,
        key: ChunkKey,
        chunk: &ColumnChunk,
    ) -> Result<PutOutcome, StoreError> {
        self.put_chunk_with(key, chunk, self.config.policy, true)
    }

    /// Store one chunk with an explicit placement policy, optionally
    /// bypassing de-duplication entirely (`dedup = false` models the paper's
    /// STORE_ALL baseline: every chunk is stored even if identical bytes
    /// exist).
    pub fn put_chunk_with(
        &mut self,
        key: ChunkKey,
        chunk: &ColumnChunk,
        policy: PlacementPolicy,
        dedup: bool,
    ) -> Result<PutOutcome, StoreError> {
        self.put_chunk_sized(key, chunk, policy, dedup)
            .map(|(outcome, _)| outcome)
    }

    /// [`DataStore::put_chunk_with`], additionally returning the serialized
    /// chunk size in bytes. The chunk is serialized exactly once; callers
    /// that need byte accounting (e.g. `stored_bytes` metadata) should use
    /// this instead of serializing the chunk again themselves.
    pub fn put_chunk_sized(
        &mut self,
        key: ChunkKey,
        chunk: &ColumnChunk,
        policy: PlacementPolicy,
        dedup: bool,
    ) -> Result<(PutOutcome, u64), StoreError> {
        let t0 = Instant::now();
        let out = self.put_chunk_inner(key, chunk, policy, dedup);
        self.metrics.put_count.inc();
        self.metrics.put_ns.record_duration(t0.elapsed());
        self.metrics
            .pool_used_bytes
            .set_u64(self.mem.used_bytes() as u64);
        out
    }

    fn put_chunk_inner(
        &mut self,
        key: ChunkKey,
        chunk: &ColumnChunk,
        policy: PlacementPolicy,
        dedup: bool,
    ) -> Result<(PutOutcome, u64), StoreError> {
        let bytes = chunk.to_bytes();
        let serialized_len = bytes.len() as u64;
        let digest = if dedup {
            content_digest(&bytes)
        } else {
            // Mix the key into the digest so identical bytes under different
            // keys never alias in the partition index.
            let mut keyed = bytes.clone();
            keyed.extend_from_slice(key.intermediate.as_bytes());
            keyed.extend_from_slice(key.column.as_bytes());
            keyed.extend_from_slice(&key.block.to_le_bytes());
            content_digest(&keyed)
        };
        self.stats.logical_bytes += serialized_len;
        self.metrics.put_bytes.add(serialized_len);

        // Only the dedup path may short-circuit on a known digest: the
        // STORE_ALL baseline (`dedup = false`) must store every chunk, even
        // a re-put of identical bytes under the same key.
        if dedup && self.digest_loc.contains_key(&digest) {
            self.ref_inc(digest, serialized_len);
            if let Some(old) = self.key_map.insert(key, digest) {
                self.ref_dec(old);
            }
            self.stats.dedup_hits += 1;
            self.metrics.dedup_exact_hits.inc();
            // Report the *stored* length: for a chunk held as a delta frame
            // that is the frame, not the raw serialization.
            let stored = self
                .digest_len
                .get(&digest)
                .copied()
                .unwrap_or(serialized_len);
            return Ok((PutOutcome::Deduplicated, stored));
        }

        // One MinHash signature feeds both similarity placement and delta
        // base selection, so it is computed when either needs it.
        let sig = if matches!(policy, PlacementPolicy::BySimilarity { .. })
            || (dedup && self.config.delta_enabled)
        {
            let values = chunk.data.to_f64();
            let elements = discretize(&values, self.config.discretize_bin);
            Some(self.minhasher.signature(&elements))
        } else {
            None
        };

        // Delta attempt: if a near-duplicate chunk is already stored, XOR
        // against it and keep the frame iff it beats the raw serialization
        // by at least 25% (a marginal win is not worth the read dependency).
        let mut stored = bytes;
        let mut delta_of: Option<ContentDigest> = None;
        if dedup && self.config.delta_enabled {
            if let Some(sig) = &sig {
                if let Some(base) = self.find_delta_base(sig, digest) {
                    if let Ok(base_bytes) = self.stored_bytes_by_digest(base, false) {
                        let frame = basedelta::encode(&stored, &base_bytes, (base.0, base.1));
                        if frame.len() * 4 <= stored.len() * 3 {
                            delta_of = Some(base);
                            stored = frame;
                        }
                    }
                }
            }
        }

        let pid = self.choose_partition_with(&key, policy, sig.as_ref())?;
        let len = stored.len();
        {
            let part = self.mem.get_mut(pid).expect("open partition resident");
            part.add(digest, stored);
        }
        // Account growth and persist any evicted partitions.
        let evicted = self.mem.grow(pid, len);
        self.metrics.pool_evictions.add(evicted.len() as u64);
        for p in evicted {
            self.seal_partition(p)?;
        }
        // Index the signature after placement so the item can name both its
        // partition (similarity placement) and its digest (delta base).
        if let Some(sig) = sig {
            let item = self.next_lsh_item;
            self.next_lsh_item += 1;
            self.lsh.insert(item, sig);
            self.lsh_item_to_partition.insert(item, pid);
            self.lsh_item_to_digest.insert(item, digest);
        }
        self.digest_loc.insert(digest, pid);
        if let Some(base) = delta_of {
            self.delta_base.insert(digest, base);
            self.stats.delta_puts += 1;
            self.stats.delta_bytes_saved += serialized_len - len as u64;
            self.metrics.delta_puts.inc();
            self.metrics
                .delta_bytes_saved
                .add(serialized_len - len as u64);
        }
        // ref_inc pins the delta's base (via `delta_base`) on the 0→1 edge.
        self.ref_inc(digest, len as u64);
        if let Some(old) = self.key_map.insert(key, digest) {
            self.ref_dec(old);
        }
        *self.part_total.entry(pid).or_insert(0) += len as u64;
        self.stats.unique_bytes += len as u64;
        self.stats.chunks_stored += 1;

        // Seal the partition once it reaches its target size.
        let full = self
            .mem
            .get(pid)
            .map(|p| p.raw_bytes() >= self.config.partition_target_bytes)
            .unwrap_or(false);
        if full {
            if let Some(p) = self.mem.remove(pid) {
                self.seal_partition(p)?;
            }
        }
        Ok((PutOutcome::Stored(pid), len as u64))
    }

    /// The best available delta base for a chunk with this signature: the
    /// most similar indexed chunk (estimated Jaccard >= `delta_tau`) whose
    /// bytes are still mapped. A candidate that is itself a delta redirects
    /// to *its* base — delta chains are never created, so rehydration is
    /// always a single XOR. `exclude` is the target's own digest (a
    /// re-encode must not pick itself).
    fn find_delta_base(&self, sig: &Signature, exclude: ContentDigest) -> Option<ContentDigest> {
        for (item, _) in self.lsh.query_ranked(sig, self.config.delta_tau) {
            let Some(&cand) = self.lsh_item_to_digest.get(&item) else {
                continue;
            };
            // Never chain deltas: a delta candidate stands in for its base.
            let cand = self.delta_base.get(&cand).copied().unwrap_or(cand);
            if cand == exclude {
                continue;
            }
            if self.digest_loc.contains_key(&cand) && !self.delta_base.contains_key(&cand) {
                return Some(cand);
            }
        }
        None
    }

    /// Is base+delta encoding enabled for this store?
    pub fn delta_enabled(&self) -> bool {
        self.config.delta_enabled
    }

    /// Re-encode an already-stored chunk as a delta frame against its most
    /// similar stored base, in place of its raw representation — the
    /// "squeeze before purging" rung of the reclaim ladder. Returns the
    /// chunk's stored length after the attempt (unchanged when the chunk is
    /// already a delta, serves as a base for other deltas, has no similar
    /// enough base, or the frame would not win by >= 25%). The old copy's
    /// bytes are charged dead in its partition; the next compaction drops
    /// them.
    pub fn reencode_as_delta(&mut self, key: &ChunkKey) -> Result<u64, StoreError> {
        let digest = *self.key_map.get(key).ok_or(StoreError::NotFound)?;
        let cur_len = self.digest_len.get(&digest).copied().unwrap_or(0);
        if !self.config.delta_enabled
            || self.delta_base.contains_key(&digest)
            || self.delta_base.values().any(|&b| b == digest)
        {
            return Ok(cur_len);
        }
        let old_pid = *self.digest_loc.get(&digest).ok_or(StoreError::NotFound)?;
        let raw = self.stored_bytes_by_digest(digest, false)?;
        let chunk = ColumnChunk::from_bytes(&raw)?;
        let values = chunk.data.to_f64();
        let elements = discretize(&values, self.config.discretize_bin);
        let sig = self.minhasher.signature(&elements);
        let Some(base) = self.find_delta_base(&sig, digest) else {
            return Ok(cur_len);
        };
        let base_bytes = self.stored_bytes_by_digest(base, false)?;
        let frame = basedelta::encode(&raw, &base_bytes, (base.0, base.1));
        if frame.len() * 4 > raw.len() * 3 {
            return Ok(cur_len);
        }
        // Place the frame into an open partition — never the chunk's current
        // one: Partition::add would index-shadow the old copy while keeping
        // both in the chunk vector, double-counting raw bytes.
        let mut pid = self.choose_partition_with(key, PlacementPolicy::ByIntermediate, None)?;
        if pid == old_pid {
            pid = self.new_partition();
            self.open_by_intermediate
                .insert(key.intermediate.clone(), pid);
        }
        let len = frame.len() as u64;
        {
            let part = self.mem.get_mut(pid).expect("open partition resident");
            part.add(digest, frame);
        }
        let evicted = self.mem.grow(pid, len as usize);
        self.metrics.pool_evictions.add(evicted.len() as u64);
        for p in evicted {
            self.seal_partition(p)?;
        }
        // Relocate the digest; the old copy becomes dead bytes where it was.
        self.digest_loc.insert(digest, pid);
        self.digest_len.insert(digest, len);
        *self.part_dead.entry(old_pid).or_insert(0) += cur_len;
        self.delta_base.insert(digest, base);
        self.pin_base(base);
        *self.part_total.entry(pid).or_insert(0) += len;
        self.stats.unique_bytes += len;
        self.stats.delta_puts += 1;
        self.stats.delta_bytes_saved += cur_len.saturating_sub(len);
        self.metrics.delta_puts.inc();
        self.metrics
            .delta_bytes_saved
            .add(cur_len.saturating_sub(len));
        let full = self
            .mem
            .get(pid)
            .map(|p| p.raw_bytes() >= self.config.partition_target_bytes)
            .unwrap_or(false);
        if full {
            if let Some(p) = self.mem.remove(pid) {
                self.seal_partition(p)?;
            }
        }
        Ok(len)
    }

    fn choose_partition_with(
        &mut self,
        key: &ChunkKey,
        policy: PlacementPolicy,
        sig: Option<&Signature>,
    ) -> Result<PartitionId, StoreError> {
        match policy {
            PlacementPolicy::ByIntermediate => {
                // Co-locate chunks of one intermediate; new partition when
                // the previous one was sealed.
                if let Some(&pid) = self.open_by_intermediate.get(&key.intermediate) {
                    if !self.sealed.contains(&pid) && self.mem.contains(pid) {
                        return Ok(pid);
                    }
                }
                let pid = self.new_partition();
                self.open_by_intermediate
                    .insert(key.intermediate.clone(), pid);
                Ok(pid)
            }
            PlacementPolicy::BySimilarity { tau } => {
                let sig = sig.expect("similarity placement requires a signature");
                // Walk matches best-first until one maps to a partition that
                // is still open — after a reopen every imported item points
                // at a sealed partition, and settling for the single best
                // match would stop clustering for good.
                let target = self
                    .lsh
                    .query_ranked(sig, tau)
                    .into_iter()
                    .filter_map(|(item, _)| self.lsh_item_to_partition.get(&item).copied())
                    .find(|pid| !self.sealed.contains(pid) && self.mem.contains(*pid));
                let pid = match target {
                    Some(pid) => {
                        self.stats.similarity_placements += 1;
                        self.metrics.similarity_placements.inc();
                        pid
                    }
                    None => self.new_partition(),
                };
                Ok(pid)
            }
        }
    }

    fn new_partition(&mut self) -> PartitionId {
        let pid = self.next_partition;
        self.next_partition += 1;
        self.stats.partitions_created += 1;
        self.metrics.partitions_created.inc();
        // Evictions from inserting an empty partition are impossible unless
        // the pool is already over budget; handle them anyway.
        let evicted = self.mem.insert(Partition::new(pid));
        for p in evicted {
            // Sealing here cannot fail on serialization; propagate panics only.
            self.seal_partition(p).expect("sealing evicted partition");
        }
        pid
    }

    fn seal_partition(&mut self, partition: Partition) -> Result<(), StoreError> {
        let sealed = partition.seal();
        self.metrics.partitions_sealed.inc();
        // Per-codec compression accounting: the first byte of the sealed
        // partition is the compression frame's scheme byte.
        let codec = mistique_compress::scheme_of(&sealed)
            .map(|s| s.name())
            .unwrap_or("unknown");
        self.obs.counter(&format!("compress.{codec}.count")).inc();
        self.obs
            .counter(&format!("compress.{codec}.in_bytes"))
            .add(partition.raw_bytes() as u64);
        self.obs
            .counter(&format!("compress.{codec}.out_bytes"))
            .add(sealed.len() as u64);
        self.disk.write(partition.id(), &sealed)?;
        self.sealed.insert(partition.id());
        Ok(())
    }

    /// Flush every open partition to disk.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        for p in self.mem.drain() {
            self.seal_partition(p)?;
        }
        Ok(())
    }

    /// Record one more live reference to a digest. The first reference also
    /// pins the chunk's serialized length and, when the digest was
    /// previously dead (purge → re-log of identical bytes), takes its bytes
    /// back out of the partition's dead accounting. The 0→1 edge of a
    /// delta-encoded digest additionally pins its base chunk with one extra
    /// reference, so the base can never be compacted away first.
    fn ref_inc(&mut self, digest: ContentDigest, len: u64) {
        let count = self.digest_refs.entry(digest).or_insert(0);
        *count += 1;
        if *count == 1 {
            // Keep an already-recorded stored length: a dedup resurrect of a
            // delta-encoded chunk passes the raw serialized length, but the
            // partition holds (and the dead-byte accounting charged) the
            // frame. For a fresh digest the entry is simply `len`.
            let len = *self.digest_len.entry(digest).or_insert(len);
            if let Some(&pid) = self.digest_loc.get(&digest) {
                if let Some(dead) = self.part_dead.get_mut(&pid) {
                    *dead = dead.saturating_sub(len);
                    if *dead == 0 {
                        self.part_dead.remove(&pid);
                    }
                }
            }
            if let Some(&base) = self.delta_base.get(&digest) {
                self.pin_base(base);
            }
        }
    }

    /// Pin a delta base with one extra live reference (reviving it if its
    /// last key reference is already gone).
    fn pin_base(&mut self, base: ContentDigest) {
        let len = self.digest_len.get(&base).copied().unwrap_or(0);
        self.ref_inc(base, len);
        self.metrics.delta_base_pins.inc();
    }

    /// Drop one live reference. When the last reference goes away the
    /// chunk's bytes are charged to its partition's dead accounting; the
    /// bytes stay in the file until [`DataStore::compact`] rewrites it. A
    /// dying delta digest also releases the pin it held on its base.
    fn ref_dec(&mut self, digest: ContentDigest) {
        let Some(count) = self.digest_refs.get_mut(&digest) else {
            return;
        };
        *count = count.saturating_sub(1);
        if *count > 0 {
            return;
        }
        self.digest_refs.remove(&digest);
        let len = self.digest_len.get(&digest).copied().unwrap_or(0);
        if let Some(&pid) = self.digest_loc.get(&digest) {
            *self.part_dead.entry(pid).or_insert(0) += len;
        }
        if let Some(&base) = self.delta_base.get(&digest) {
            self.ref_dec(base);
        }
    }

    /// Remove every chunk reference of one intermediate (a purge). Chunk
    /// bytes whose last reference this was become dead inside their
    /// partitions — still on disk, reclaimed by the next
    /// [`DataStore::compact`] pass. Chunks shared with other intermediates
    /// via dedup stay live.
    pub fn retract_intermediate(&mut self, intermediate: &str) -> RetractOutcome {
        let keys: Vec<ChunkKey> = self
            .key_map
            .keys()
            .filter(|k| k.intermediate == intermediate)
            .cloned()
            .collect();
        let mut out = RetractOutcome::default();
        for key in keys {
            if let Some(digest) = self.key_map.remove(&key) {
                out.keys_removed += 1;
                let last = self.digest_refs.get(&digest).copied().unwrap_or(0) == 1;
                self.ref_dec(digest);
                if last {
                    out.bytes_released += self.digest_len.get(&digest).copied().unwrap_or(0);
                }
            }
        }
        out
    }

    /// Raw bytes of dead chunks currently sitting inside partitions.
    pub fn dead_bytes(&self) -> u64 {
        self.part_dead.values().sum()
    }

    /// Rewrite every sealed on-disk partition whose live-byte ratio has
    /// dropped to `live_ratio_threshold` or below, dropping its dead chunks;
    /// fully-dead partitions are deleted outright. Each rewrite is a single
    /// `write_atomic` overwrite of the partition file (the id — and thus the
    /// catalog's `digest → partition` mapping — never changes), so a crash
    /// at any point leaves each file in exactly its pre- or post-compaction
    /// state. Open and quarantined partitions are skipped: open ones shed
    /// their dead chunks when they seal, quarantined ones are evidence.
    pub fn compact(&mut self, live_ratio_threshold: f64) -> Result<CompactionReport, StoreError> {
        let mut report = CompactionReport::default();
        // Split every mapped digest into live/dead per partition, once.
        let mut by_pid: HashMap<PartitionId, (Vec<ContentDigest>, Vec<ContentDigest>)> =
            HashMap::new();
        for (&digest, &pid) in &self.digest_loc {
            let entry = by_pid.entry(pid).or_default();
            if self.digest_refs.get(&digest).copied().unwrap_or(0) > 0 {
                entry.0.push(digest);
            } else {
                entry.1.push(digest);
            }
        }
        // Partitions to visit: any with a mapped digest, plus any carrying
        // dead bytes with no mapped digests left at all (e.g. a fully-dead
        // partition after a catalog import, where dead digests are no longer
        // in the catalog).
        let mut pids: Vec<PartitionId> = by_pid
            .keys()
            .chain(self.part_dead.keys())
            .copied()
            .collect();
        pids.sort_unstable();
        pids.dedup();
        let empty: (Vec<ContentDigest>, Vec<ContentDigest>) = (Vec::new(), Vec::new());
        for pid in pids {
            if self.mem.contains(pid)
                || self.quarantined.contains_key(&pid)
                || !self.sealed.contains(&pid)
            {
                continue;
            }
            if !self.disk.contains(pid) {
                // No backing file. If nothing live maps here the partition
                // was already deleted (e.g. a crash landed between a
                // fully-dead partition's removal and the next catalog
                // export): retire its stale dead-byte accounting so a
                // re-imported catalog converges to dead_bytes() == 0.
                let live_here = by_pid.get(&pid).is_some_and(|(live, _)| !live.is_empty());
                if !live_here {
                    if let Some(dead) = self.part_dead.remove(&pid) {
                        report.bytes_reclaimed += dead;
                        self.stats.unique_bytes = self.stats.unique_bytes.saturating_sub(dead);
                    }
                    self.part_total.remove(&pid);
                    self.sealed.remove(&pid);
                }
                continue;
            }
            report.partitions_scanned += 1;
            let dead = self.part_dead.get(&pid).copied().unwrap_or(0);
            if dead == 0 {
                continue;
            }
            let total = self.part_total.get(&pid).copied().unwrap_or(0).max(dead);
            let live_ratio = 1.0 - dead as f64 / total as f64;
            if live_ratio > live_ratio_threshold {
                continue;
            }
            let (live, dead_digests) = by_pid.get(&pid).unwrap_or(&empty);
            if live.is_empty() {
                self.disk.remove(pid)?;
                self.sealed.remove(&pid);
                report.partitions_removed += 1;
            } else {
                let sealed_bytes = self.disk.read(pid)?;
                let old = Partition::unseal(pid, &sealed_bytes)?;
                // Refuse to rewrite if a live chunk is not in the file:
                // better to keep the dead bytes than to persist data loss.
                for d in live {
                    if old.get(*d).is_none() {
                        return Err(StoreError::CorruptPartition(
                            "live chunk missing during compaction",
                        ));
                    }
                }
                let keep: HashSet<ContentDigest> = live.iter().copied().collect();
                let rewritten = old.filtered(|d| keep.contains(&d));
                self.disk.write(pid, &rewritten.seal())?;
                self.part_total.insert(pid, rewritten.raw_bytes() as u64);
                report.partitions_rewritten += 1;
            }
            self.read_cache.remove(&pid);
            for d in dead_digests {
                self.digest_loc.remove(d);
                self.digest_len.remove(d);
                // A physically removed delta chunk no longer needs its
                // base mapping (its base pin was released at ref_dec time).
                self.delta_base.remove(d);
            }
            if live.is_empty() {
                self.part_total.remove(&pid);
            }
            self.part_dead.remove(&pid);
            report.bytes_reclaimed += dead;
            report.chunks_dropped += dead_digests.len() as u64;
            self.stats.unique_bytes = self.stats.unique_bytes.saturating_sub(dead);
            self.stats.chunks_stored = self
                .stats
                .chunks_stored
                .saturating_sub(dead_digests.len() as u64);
        }
        self.metrics.compaction_runs.inc();
        self.metrics
            .compaction_bytes_reclaimed
            .add(report.bytes_reclaimed);
        self.metrics
            .compaction_partitions_rewritten
            .add(report.partitions_rewritten);
        Ok(report)
    }

    /// Recovery pass over the store directory, run after (re)opening over a
    /// directory that may have seen a crash: removes orphaned `*.tmp` files,
    /// verifies every partition's integrity trailer, and quarantines
    /// failures so one corrupt partition cannot poison the rest. Catalog
    /// entries pointing at partitions with no backing file are counted as
    /// `missing`. Results are also published on the `store.recovery.*`
    /// counters.
    pub fn recover(&mut self) -> Result<RecoveryReport, StoreError> {
        let outcome = self.disk.sweep()?;
        let mut report = RecoveryReport {
            partitions_ok: outcome.ok.len() as u64,
            quarantined: outcome.quarantined.len() as u64,
            orphans_removed: outcome.orphans_removed,
            missing: 0,
        };
        let on_disk: HashSet<PartitionId> = outcome.ok.iter().copied().collect();
        for (pid, reason) in outcome.quarantined {
            self.read_cache.remove(&pid);
            self.quarantined.insert(pid, reason);
        }
        let referenced: HashSet<PartitionId> = self.digest_loc.values().copied().collect();
        for pid in referenced {
            if !on_disk.contains(&pid)
                && !self.quarantined.contains_key(&pid)
                && !self.mem.contains(pid)
            {
                report.missing += 1;
            }
        }
        self.obs
            .counter("store.recovery.partitions_ok")
            .add(report.partitions_ok);
        self.obs
            .counter("store.recovery.quarantined")
            .add(report.quarantined);
        self.obs
            .counter("store.recovery.orphans_removed")
            .add(report.orphans_removed);
        self.obs
            .counter("store.recovery.missing")
            .add(report.missing);
        Ok(report)
    }

    /// Quarantined partitions (id → reason) from recovery passes so far.
    pub fn quarantined(&self) -> &HashMap<PartitionId, String> {
        &self.quarantined
    }

    /// Whether a chunk has been stored under this key.
    pub fn contains(&self, key: &ChunkKey) -> bool {
        self.key_map.contains_key(key)
    }

    /// Read a chunk back by key.
    pub fn get_chunk(&mut self, key: &ChunkKey) -> Result<ColumnChunk, StoreError> {
        let t0 = Instant::now();
        let out = self.get_chunk_inner(key);
        self.metrics.get_count.inc();
        self.metrics.get_ns.record_duration(t0.elapsed());
        out
    }

    /// The stored bytes of a digest through the usual three tiers (buffer
    /// pool → read cache → disk). For a delta-encoded digest this is the
    /// frame, not the chunk — the delta resolution paths use it to fetch
    /// both halves. `count` controls whether the read-path hit/miss metrics
    /// are charged (put-side base probes stay silent).
    fn stored_bytes_by_digest(
        &mut self,
        digest: ContentDigest,
        count: bool,
    ) -> Result<Vec<u8>, StoreError> {
        let pid = *self.digest_loc.get(&digest).ok_or(StoreError::NotFound)?;
        if let Some(reason) = self.quarantined.get(&pid) {
            return Err(StoreError::Quarantined {
                partition: pid,
                reason: reason.clone(),
            });
        }
        if let Some(part) = self.mem.get(pid) {
            let bytes = part
                .get(digest)
                .ok_or(StoreError::CorruptPartition("missing chunk"))?
                .to_vec();
            if count {
                self.metrics.get_mem_hits.inc();
            }
            return Ok(bytes);
        }
        if let Some(part) = self.read_cache.get(&pid) {
            let bytes = part
                .get(digest)
                .ok_or(StoreError::CorruptPartition("missing chunk"))?
                .to_vec();
            if count {
                self.metrics.get_cache_hits.inc();
                self.metrics.read_cache_hits.inc();
            }
            return Ok(bytes);
        }
        if count {
            self.metrics.get_disk_reads.inc();
            self.metrics.read_cache_misses.inc();
        }
        let sealed = self.disk.read(pid)?;
        Self::note_codec_read(&self.obs, &self.codec_read_bytes, &sealed);
        let part = Partition::unseal(pid, &sealed)?;
        let bytes = part
            .get(digest)
            .ok_or(StoreError::CorruptPartition("missing chunk"))?
            .to_vec();
        self.cache_loaded_partition(pid, part);
        Ok(bytes)
    }

    /// Rehydrate a delta frame into the target chunk's serialized bytes:
    /// fetch the base by digest, verify, XOR. Attributes the frame's bytes
    /// to the `delta:<inner scheme>` codec so EXPLAIN shows where delta
    /// resolution happened.
    fn resolve_delta(
        &mut self,
        digest: ContentDigest,
        frame: Vec<u8>,
    ) -> Result<Vec<u8>, StoreError> {
        let Some(&base) = self.delta_base.get(&digest) else {
            return Ok(frame);
        };
        if !basedelta::is_delta_frame(&frame) {
            // The mapping outlived a raw re-store (possible only across a
            // catalog roundtrip); the stored bytes are already the chunk.
            return Ok(frame);
        }
        let base_bytes = self.stored_bytes_by_digest(base, false)?;
        let raw = basedelta::decode(&frame, &base_bytes, (base.0, base.1))?;
        self.note_delta_read(&frame);
        Ok(raw)
    }

    /// Account one delta rehydration: frame bytes against the
    /// `delta:<scheme>` codec label plus the rehydration counter.
    fn note_delta_read(&mut self, frame: &[u8]) {
        let scheme = basedelta::inner_scheme(frame)
            .map(|s| s.name())
            .unwrap_or("unknown");
        *self
            .codec_read_bytes
            .lock()
            .unwrap()
            .entry(format!("delta:{scheme}"))
            .or_insert(0) += frame.len() as u64;
        self.obs
            .counter(&format!("read.codec.delta_{scheme}.bytes"))
            .add(frame.len() as u64);
        self.obs
            .counter(&format!("read.codec.delta_{scheme}.count"))
            .inc();
        self.metrics.delta_rehydrations.inc();
    }

    fn get_chunk_inner(&mut self, key: &ChunkKey) -> Result<ColumnChunk, StoreError> {
        let digest = *self.key_map.get(key).ok_or(StoreError::NotFound)?;
        let pid = *self.digest_loc.get(&digest).ok_or(StoreError::NotFound)?;
        if let Some(reason) = self.quarantined.get(&pid) {
            return Err(StoreError::Quarantined {
                partition: pid,
                reason: reason.clone(),
            });
        }
        self.metrics.get_partitions_touched.inc();

        // Delta-encoded chunks take the resolving path (frame + base fetch);
        // everything else keeps the zero-copy tiers below.
        if self.delta_base.contains_key(&digest) {
            let frame = self.stored_bytes_by_digest(digest, true)?;
            let raw = self.resolve_delta(digest, frame)?;
            self.metrics.get_bytes.add(raw.len() as u64);
            return Ok(ColumnChunk::from_bytes(&raw)?);
        }

        // 1. Open partition in the buffer pool.
        if let Some(part) = self.mem.get(pid) {
            let bytes = part
                .get(digest)
                .ok_or(StoreError::CorruptPartition("missing chunk"))?;
            self.metrics.get_mem_hits.inc();
            self.metrics.get_bytes.add(bytes.len() as u64);
            return Ok(ColumnChunk::from_bytes(bytes)?);
        }
        // 2. Read cache (LRU touch).
        if let Some(part) = self.read_cache.get(&pid) {
            let bytes = part
                .get(digest)
                .ok_or(StoreError::CorruptPartition("missing chunk"))?;
            self.metrics.get_cache_hits.inc();
            self.metrics.read_cache_hits.inc();
            self.metrics.get_bytes.add(bytes.len() as u64);
            return Ok(ColumnChunk::from_bytes(bytes)?);
        }
        // 3. Disk.
        self.metrics.get_disk_reads.inc();
        self.metrics.read_cache_misses.inc();
        let sealed = self.disk.read(pid)?;
        Self::note_codec_read(&self.obs, &self.codec_read_bytes, &sealed);
        let part = Partition::unseal(pid, &sealed)?;
        let chunk = {
            let bytes = part
                .get(digest)
                .ok_or(StoreError::CorruptPartition("missing chunk"))?;
            self.metrics.get_bytes.add(bytes.len() as u64);
            ColumnChunk::from_bytes(bytes)?
        };
        self.cache_loaded_partition(pid, part);
        Ok(chunk)
    }

    /// Insert a partition just read from disk into the read cache, evicting
    /// LRU victims one at a time and counting them. Returns the partition
    /// back when it was not cached (caching disabled, or the partition alone
    /// exceeds the whole budget).
    fn cache_loaded_partition(&mut self, pid: PartitionId, part: Partition) -> Option<Partition> {
        if !self.config.read_cache || part.raw_bytes() > self.read_cache.capacity_bytes() {
            return Some(part);
        }
        let raw = part.raw_bytes();
        let evicted = self.read_cache.insert(pid, part, raw);
        self.metrics.read_cache_evictions.add(evicted.len() as u64);
        self.metrics
            .read_cache_bytes
            .set_u64(self.read_cache.used_bytes() as u64);
        None
    }

    /// Estimated serialized byte volume of a batch read, summed from the
    /// per-digest length accounting (populated on every put and persisted in
    /// the catalog). Keys that don't resolve contribute 0 — this sizes
    /// read fan-out, it is not an existence check.
    pub fn batch_bytes_hint(&self, keys: &[ChunkKey]) -> u64 {
        keys.iter()
            .filter_map(|k| self.key_map.get(k))
            .filter_map(|d| self.digest_len.get(d))
            .sum()
    }

    /// Batch read: the serialized bytes of many chunks at once. Partitions
    /// that must come off disk are read and unsealed concurrently on up to
    /// `parallelism` crossbeam scoped threads (decompression dominates cold
    /// reads); results are returned in request order, byte-identical to a
    /// sequence of [`DataStore::get_chunk`] calls.
    pub fn get_chunk_bytes_batch(
        &mut self,
        keys: &[ChunkKey],
        parallelism: usize,
    ) -> Result<Vec<Vec<u8>>, StoreError> {
        let t0 = Instant::now();
        let out = self.get_chunk_bytes_batch_inner(keys, parallelism);
        self.metrics.get_count.add(keys.len() as u64);
        self.metrics.get_ns.record_duration(t0.elapsed());
        out
    }

    fn get_chunk_bytes_batch_inner(
        &mut self,
        keys: &[ChunkKey],
        parallelism: usize,
    ) -> Result<Vec<Vec<u8>>, StoreError> {
        // Resolve every key up front so a missing or quarantined one fails
        // before any I/O. A delta-encoded chunk also resolves its base here:
        // the base partition joins the parallel prefetch below instead of
        // forcing a serial read during rehydration.
        let mut locs = Vec::with_capacity(keys.len());
        let mut base_pids: Vec<PartitionId> = Vec::new();
        for key in keys {
            let digest = *self.key_map.get(key).ok_or(StoreError::NotFound)?;
            let pid = *self.digest_loc.get(&digest).ok_or(StoreError::NotFound)?;
            if let Some(reason) = self.quarantined.get(&pid) {
                return Err(StoreError::Quarantined {
                    partition: pid,
                    reason: reason.clone(),
                });
            }
            if let Some(&base) = self.delta_base.get(&digest) {
                if let Some(&bpid) = self.digest_loc.get(&base) {
                    if let Some(reason) = self.quarantined.get(&bpid) {
                        return Err(StoreError::Quarantined {
                            partition: bpid,
                            reason: reason.clone(),
                        });
                    }
                    base_pids.push(bpid);
                }
            }
            locs.push((digest, pid));
        }

        // Which distinct partitions have to come off disk?
        let mut seen: HashSet<PartitionId> = HashSet::new();
        let mut missing: Vec<PartitionId> = Vec::new();
        for &(_, pid) in &locs {
            if seen.insert(pid) && !self.mem.contains(pid) && !self.read_cache.contains(&pid) {
                missing.push(pid);
            }
        }
        self.metrics.get_partitions_touched.add(seen.len() as u64);
        // Base partitions ride the same fan-out but are not charged as
        // partitions the *request* touched.
        for bpid in base_pids {
            if seen.insert(bpid) && !self.mem.contains(bpid) && !self.read_cache.contains(&bpid) {
                missing.push(bpid);
            }
        }

        let loaded = self.load_partitions(&missing, parallelism)?;
        // Partitions that could not enter the cache still serve this batch.
        let mut side: HashMap<PartitionId, Partition> = HashMap::new();
        let mut fresh: HashSet<PartitionId> = HashSet::new();
        for (pid, part) in loaded {
            self.metrics.get_disk_reads.inc();
            self.metrics.read_cache_misses.inc();
            fresh.insert(pid);
            if let Some(part) = self.cache_loaded_partition(pid, part) {
                side.insert(pid, part);
            }
        }

        let mut out = Vec::with_capacity(keys.len());
        for &(digest, pid) in &locs {
            let mut bytes = self.batch_fetch_bytes(digest, pid, &mut side, &fresh, true)?;
            if self.delta_base.contains_key(&digest) && basedelta::is_delta_frame(&bytes) {
                let base = self.delta_base[&digest];
                let bpid = *self.digest_loc.get(&base).ok_or(StoreError::NotFound)?;
                let base_bytes = self.batch_fetch_bytes(base, bpid, &mut side, &fresh, false)?;
                let raw = basedelta::decode(&bytes, &base_bytes, (base.0, base.1))?;
                self.note_delta_read(&bytes);
                bytes = raw;
            }
            self.metrics.get_bytes.add(bytes.len() as u64);
            out.push(bytes);
        }
        Ok(out)
    }

    /// Serve one digest's stored bytes during a batch: buffer pool, then the
    /// batch's side partitions, then the read cache, then a (re-)read from
    /// disk kept aside for the rest of the batch.
    fn batch_fetch_bytes(
        &mut self,
        digest: ContentDigest,
        pid: PartitionId,
        side: &mut HashMap<PartitionId, Partition>,
        fresh: &HashSet<PartitionId>,
        count: bool,
    ) -> Result<Vec<u8>, StoreError> {
        let bytes: Vec<u8>;
        if let Some(part) = self.mem.get(pid) {
            if count {
                self.metrics.get_mem_hits.inc();
            }
            bytes = part
                .get(digest)
                .ok_or(StoreError::CorruptPartition("missing chunk"))?
                .to_vec();
        } else if let Some(part) = side.get(&pid) {
            bytes = part
                .get(digest)
                .ok_or(StoreError::CorruptPartition("missing chunk"))?
                .to_vec();
        } else if let Some(part) = self.read_cache.get(&pid) {
            if count && !fresh.contains(&pid) {
                self.metrics.get_cache_hits.inc();
                self.metrics.read_cache_hits.inc();
            }
            bytes = part
                .get(digest)
                .ok_or(StoreError::CorruptPartition("missing chunk"))?
                .to_vec();
        } else {
            // Loaded this batch, then evicted by a later partition of the
            // same batch (cache smaller than the batch): re-read it and
            // keep it aside for the rest of this batch.
            let sealed = self.disk.read(pid)?;
            Self::note_codec_read(&self.obs, &self.codec_read_bytes, &sealed);
            let part = Partition::unseal(pid, &sealed)?;
            self.metrics.get_disk_reads.inc();
            bytes = part
                .get(digest)
                .ok_or(StoreError::CorruptPartition("missing chunk"))?
                .to_vec();
            side.insert(pid, part);
        }
        Ok(bytes)
    }

    /// Read and unseal the given partitions from disk, concurrently on up to
    /// `parallelism` scoped threads when more than one is needed.
    fn load_partitions(
        &self,
        pids: &[PartitionId],
        parallelism: usize,
    ) -> Result<Vec<(PartitionId, Partition)>, StoreError> {
        if pids.is_empty() {
            return Ok(Vec::new());
        }
        // Capture the caller's active span before any workers spawn: every
        // per-partition load span links to it explicitly, so the trace tree
        // is identical whether loads run serially or on worker threads.
        let ctx = self.obs.current_context();
        let workers = parallelism.max(1).min(pids.len());
        if workers <= 1 {
            return pids
                .iter()
                .map(|&pid| {
                    let mut sp = self
                        .obs
                        .span_with_parent("store.partition.load", ctx.as_ref());
                    sp.attr("pid", pid);
                    let sealed = self.disk.read(pid)?;
                    Self::note_codec_read(&self.obs, &self.codec_read_bytes, &sealed);
                    let part = Partition::unseal(pid, &sealed)?;
                    sp.finish();
                    Ok((pid, part))
                })
                .collect();
        }
        let disk = &self.disk;
        let obs = &self.obs;
        let codec_map = &self.codec_read_bytes;
        let ctx_ref = ctx.as_ref();
        // A panicking worker must fail this read, not abort the process:
        // join/scope failures map to an error instead of unwrapping.
        type Loaded = Vec<Vec<Result<(PartitionId, Partition), StoreError>>>;
        let scoped = crossbeam::thread::scope(|scope| -> std::thread::Result<Loaded> {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move |_| {
                        let mut out = Vec::new();
                        let mut i = w;
                        while i < pids.len() {
                            let pid = pids[i];
                            let mut sp = obs.span_with_parent("store.partition.load", ctx_ref);
                            sp.attr("pid", pid);
                            out.push(disk.read(pid).and_then(|sealed| {
                                Self::note_codec_read(obs, codec_map, &sealed);
                                Ok((pid, Partition::unseal(pid, &sealed)?))
                            }));
                            sp.finish();
                            i += workers;
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        let per_worker = match scoped {
            Ok(Ok(v)) => v,
            _ => {
                return Err(StoreError::CorruptPartition(
                    "partition load worker panicked",
                ))
            }
        };
        let mut out = Vec::with_capacity(pids.len());
        for result in per_worker.into_iter().flatten() {
            out.push(result?);
        }
        Ok(out)
    }

    /// Drop all cached disk partitions (used when benchmarking cold reads).
    /// This is an explicit benchmark/testing control, not a budget-pressure
    /// eviction path — those always evict a single LRU victim at a time.
    pub fn clear_read_cache(&mut self) {
        self.read_cache.clear();
        self.metrics.read_cache_bytes.set_u64(0);
    }

    /// Read-cache occupancy in bytes.
    pub fn read_cache_bytes(&self) -> usize {
        self.read_cache.used_bytes()
    }

    /// Number of partitions currently held by the read cache.
    pub fn read_cache_len(&self) -> usize {
        self.read_cache.len()
    }

    /// Storage counters so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Compressed bytes currently on disk.
    pub fn disk_bytes(&self) -> Result<u64, StoreError> {
        self.disk.disk_bytes()
    }

    /// Cumulative bytes written to disk (logging overhead metric).
    pub fn bytes_written(&self) -> u64 {
        self.disk.bytes_written()
    }

    /// Total physical footprint: compressed disk bytes plus raw bytes of
    /// partitions still open in memory.
    pub fn physical_bytes(&self) -> Result<u64, StoreError> {
        Ok(self.disk.disk_bytes()? + self.mem.used_bytes() as u64)
    }

    /// Export the chunk catalog — everything needed to read chunks back from
    /// the partition files after a restart. Call [`DataStore::flush`] first
    /// so every partition is on disk.
    pub fn export_catalog(&self) -> StoreCatalog {
        let mut partition_totals: Vec<(PartitionId, u64)> = self
            .part_total
            .iter()
            .map(|(&pid, &total)| (pid, total))
            .collect();
        partition_totals.sort_unstable();
        // Delta mappings for digests that are still live: a reader needs the
        // base digest to rehydrate, and the importer re-derives base pins
        // from these records. Stale mappings of purged-and-compacted chunks
        // are dropped here.
        let mut deltas: Vec<DeltaRecord> = self
            .delta_base
            .iter()
            .filter(|(d, _)| self.digest_refs.get(d).copied().unwrap_or(0) > 0)
            .map(|(d, b)| DeltaRecord {
                digest: (d.0, d.1),
                base: (b.0, b.1),
            })
            .collect();
        deltas.sort_unstable_by_key(|r| r.digest);
        // Digests live only through pins (a delta base whose own key
        // references are gone) are reachable from no CatalogEntry; export
        // their location and length separately so reads resolve after reopen.
        let keyed: HashSet<ContentDigest> = self.key_map.values().copied().collect();
        let mut extras: Vec<CatalogExtra> = self
            .digest_loc
            .iter()
            .filter(|(d, _)| {
                !keyed.contains(d) && self.digest_refs.get(d).copied().unwrap_or(0) > 0
            })
            .map(|(d, &pid)| CatalogExtra {
                digest: (d.0, d.1),
                partition: pid,
                len: self.digest_len.get(d).copied().unwrap_or(0),
            })
            .collect();
        extras.sort_unstable_by_key(|e| e.digest);
        // LSH state: without it a reopened store can neither cluster new
        // chunks with old ones (BySimilarity) nor find delta bases among
        // pre-restart chunks.
        let mut lsh_items: Vec<LshItemRecord> = self
            .lsh
            .iter()
            .map(|(item, sig)| LshItemRecord {
                item,
                partition: self.lsh_item_to_partition.get(&item).copied().unwrap_or(0),
                digest: self
                    .lsh_item_to_digest
                    .get(&item)
                    .map(|d| (d.0, d.1))
                    .unwrap_or((0, 0)),
                signature: sig.to_vec(),
            })
            .collect();
        lsh_items.sort_unstable_by_key(|r| r.item);
        StoreCatalog {
            entries: self
                .key_map
                .iter()
                .map(|(key, digest)| CatalogEntry {
                    key: key.clone(),
                    digest: (digest.0, digest.1),
                    partition: self.digest_loc[digest],
                    len: self.digest_len.get(digest).copied().unwrap_or(0),
                })
                .collect(),
            next_partition: self.next_partition,
            stats: self.stats,
            partition_totals,
            deltas,
            extras,
            lsh_items,
        }
    }

    /// Restore a catalog exported by [`DataStore::export_catalog`] into a
    /// freshly opened store over the same directory. All restored partitions
    /// are treated as sealed (reads come from disk). Reference counts and
    /// per-partition live/dead byte accounting are rebuilt from the entries:
    /// dead bytes are the recorded partition totals minus the live chunk
    /// bytes, so compaction pressure survives a restart.
    pub fn import_catalog(&mut self, catalog: StoreCatalog) {
        for entry in catalog.entries {
            let digest = ContentDigest(entry.digest.0, entry.digest.1);
            self.digest_loc.insert(digest, entry.partition);
            self.sealed.insert(entry.partition);
            if entry.len > 0 {
                self.digest_len.insert(digest, entry.len);
            }
            *self.digest_refs.entry(digest).or_insert(0) += 1;
            if let Some(old) = self.key_map.insert(entry.key, digest) {
                self.ref_dec(old);
            }
        }
        // Pin-only digests (delta bases without key references): location
        // and length, but no reference — pins are re-derived from the delta
        // records below.
        for extra in catalog.extras {
            let digest = ContentDigest(extra.digest.0, extra.digest.1);
            self.digest_loc.insert(digest, extra.partition);
            self.sealed.insert(extra.partition);
            if extra.len > 0 {
                self.digest_len.insert(digest, extra.len);
            }
        }
        // Delta mappings, then base pins: one pin per *live* delta digest,
        // mirroring what ref_inc did on the original store. (The raw entry
        // bump above bypassed ref_inc on purpose — double-pinning a base
        // whose delta has several key references would leak pins.)
        for rec in &catalog.deltas {
            let digest = ContentDigest(rec.digest.0, rec.digest.1);
            let base = ContentDigest(rec.base.0, rec.base.1);
            self.delta_base.insert(digest, base);
            if self.digest_refs.get(&digest).copied().unwrap_or(0) > 0 {
                *self.digest_refs.entry(base).or_insert(0) += 1;
            }
        }
        for (pid, total) in catalog.partition_totals {
            self.part_total.insert(pid, total);
            // Anything with a recorded total was created before the export;
            // after a reopen it is on disk (or gone), never open in memory.
            self.sealed.insert(pid);
        }
        // Dead bytes per partition = recorded file total − live chunk bytes.
        // Catalogs from before byte accounting carry no totals; their
        // partitions import as all-live (conservative: compaction skips).
        let mut live: HashMap<PartitionId, u64> = HashMap::new();
        for (&digest, &pid) in &self.digest_loc {
            if self.digest_refs.get(&digest).copied().unwrap_or(0) > 0 {
                *live.entry(pid).or_insert(0) += self.digest_len.get(&digest).copied().unwrap_or(0);
            }
        }
        for (&pid, &total) in &self.part_total {
            let l = live.get(&pid).copied().unwrap_or(0);
            if total > l {
                self.part_dead.insert(pid, total - l);
            }
        }
        self.next_partition = self.next_partition.max(catalog.next_partition);
        self.stats = catalog.stats;
        // Rebuild the similarity index. Signatures whose length does not
        // match the current MinHash configuration are skipped (the knobs
        // changed across the restart); those chunks simply stop being
        // similarity candidates.
        for rec in catalog.lsh_items {
            if rec.signature.len() != self.lsh.signature_len() {
                continue;
            }
            self.lsh.insert(rec.item, Signature(rec.signature));
            self.lsh_item_to_partition.insert(rec.item, rec.partition);
            if rec.digest != (0, 0) {
                self.lsh_item_to_digest
                    .insert(rec.item, ContentDigest(rec.digest.0, rec.digest.1));
            }
            self.next_lsh_item = self.next_lsh_item.max(rec.item + 1);
        }
    }
}

/// One chunk's catalog entry: logical key → content digest → partition.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CatalogEntry {
    /// Logical chunk key.
    pub key: ChunkKey,
    /// Content digest (two 64-bit halves).
    pub digest: (u64, u64),
    /// Partition holding the chunk.
    pub partition: PartitionId,
    /// Serialized chunk length in bytes (0 in catalogs from before byte
    /// accounting; such chunks import with unknown length and their
    /// partitions are treated as all-live).
    pub len: u64,
}

/// A delta-encoded digest and the base it was encoded against.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct DeltaRecord {
    /// Content digest of the chunk stored as a delta frame.
    pub digest: (u64, u64),
    /// Content digest of its base chunk.
    pub base: (u64, u64),
}

/// A digest kept alive only by delta-base pins: no key maps to it, but its
/// bytes must stay readable for rehydration.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct CatalogExtra {
    /// Content digest.
    pub digest: (u64, u64),
    /// Partition holding the chunk.
    pub partition: PartitionId,
    /// Stored length in bytes.
    pub len: u64,
}

/// One LSH item: its MinHash signature rows plus where the chunk it
/// describes went. Persisting these keeps similarity clustering and delta
/// base-finding alive across a restart.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct LshItemRecord {
    /// Item id inside the LSH index.
    pub item: u64,
    /// Partition the item's chunk was placed in.
    pub partition: PartitionId,
    /// Content digest of the item's chunk ((0, 0) when unknown).
    pub digest: (u64, u64),
    /// MinHash signature rows.
    pub signature: Vec<u64>,
}

/// Serializable snapshot of the store's chunk catalog.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct StoreCatalog {
    /// All chunk entries.
    pub entries: Vec<CatalogEntry>,
    /// Next partition id to allocate.
    pub next_partition: PartitionId,
    /// Storage counters at export time.
    pub stats: StoreStats,
    /// Raw chunk bytes ever placed into each partition, sorted by id —
    /// together with the entry lengths this reconstructs per-partition
    /// dead-byte accounting after reopen.
    pub partition_totals: Vec<(PartitionId, u64)>,
    /// Live delta-encoded digests and their bases (absent in old catalogs).
    #[serde(default)]
    pub deltas: Vec<DeltaRecord>,
    /// Pin-only digests reachable from no entry (absent in old catalogs).
    #[serde(default)]
    pub extras: Vec<CatalogExtra>,
    /// Persisted LSH items (absent in old catalogs — similarity state then
    /// starts empty after reopen, the pre-existing behavior).
    #[serde(default)]
    pub lsh_items: Vec<LshItemRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mistique_dataframe::ColumnData;

    fn f64_chunk(values: Vec<f64>) -> ColumnChunk {
        ColumnChunk::new(ColumnData::F64(values))
    }

    fn store(policy: PlacementPolicy) -> (tempfile::TempDir, DataStore) {
        let dir = tempfile::tempdir().unwrap();
        let config = DataStoreConfig {
            policy,
            mem_capacity: 1 << 20,
            partition_target_bytes: 64 << 10,
            ..DataStoreConfig::default()
        };
        let ds = DataStore::open(dir.path(), config).unwrap();
        (dir, ds)
    }

    #[test]
    fn put_get_roundtrip() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let chunk = f64_chunk((0..500).map(|i| i as f64).collect());
        let key = ChunkKey::new("m1.interm0", "price", 0);
        let outcome = ds.put_chunk(key.clone(), &chunk).unwrap();
        assert!(matches!(outcome, PutOutcome::Stored(_)));
        let back = ds.get_chunk(&key).unwrap();
        assert_eq!(back, chunk);
    }

    #[test]
    fn exact_dedup_stores_once() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let chunk = f64_chunk(vec![1.0; 1000]);
        ds.put_chunk(ChunkKey::new("m1.i0", "c", 0), &chunk)
            .unwrap();
        let second = ds
            .put_chunk(ChunkKey::new("m2.i0", "c", 0), &chunk)
            .unwrap();
        assert_eq!(second, PutOutcome::Deduplicated);
        let s = ds.stats();
        assert_eq!(s.chunks_stored, 1);
        assert_eq!(s.dedup_hits, 1);
        assert!(s.logical_bytes > s.unique_bytes);
        // Both keys resolve to the same data.
        assert_eq!(
            ds.get_chunk(&ChunkKey::new("m2.i0", "c", 0)).unwrap(),
            chunk
        );
    }

    #[test]
    fn read_after_flush_hits_disk() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let chunk = f64_chunk((0..2000).map(|i| (i % 37) as f64).collect());
        let key = ChunkKey::new("m.i", "col", 0);
        ds.put_chunk(key.clone(), &chunk).unwrap();
        ds.flush().unwrap();
        assert!(ds.disk_bytes().unwrap() > 0);
        assert_eq!(ds.get_chunk(&key).unwrap(), chunk);
        // Second read comes from the cache; clearing it forces disk again.
        ds.clear_read_cache();
        assert_eq!(ds.get_chunk(&key).unwrap(), chunk);
    }

    #[test]
    fn similarity_policy_clusters_similar_chunks() {
        let (_dir, mut ds) = store(PlacementPolicy::BySimilarity { tau: 0.5 });
        let base: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        ds.put_chunk(ChunkKey::new("a", "c", 0), &f64_chunk(base.clone()))
            .unwrap();
        // Slightly perturbed copy: not identical (no exact dedup) but similar.
        let mut near = base.clone();
        near[0] += 0.001;
        let outcome = ds
            .put_chunk(ChunkKey::new("b", "c", 0), &f64_chunk(near))
            .unwrap();
        match outcome {
            PutOutcome::Stored(_) => {}
            PutOutcome::Deduplicated => panic!("should not be exact-dedup"),
        }
        assert_eq!(ds.stats().similarity_placements, 1);
        assert_eq!(ds.stats().partitions_created, 1, "same partition reused");
    }

    #[test]
    fn dissimilar_chunks_get_new_partitions() {
        let (_dir, mut ds) = store(PlacementPolicy::BySimilarity { tau: 0.5 });
        let a: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..1000).map(|i| (i as f64) * 1000.0 + 5e6).collect();
        ds.put_chunk(ChunkKey::new("a", "c", 0), &f64_chunk(a))
            .unwrap();
        ds.put_chunk(ChunkKey::new("b", "c", 0), &f64_chunk(b))
            .unwrap();
        assert_eq!(ds.stats().partitions_created, 2);
    }

    #[test]
    fn by_intermediate_colocates_columns() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        for col in ["n0", "n1", "n2"] {
            let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
            // Different columns, different values per column name hash.
            let mut v = vals.clone();
            v[0] = col.len() as f64 * 1000.0;
            ds.put_chunk(ChunkKey::new("model.layer3", col, 0), &f64_chunk(v))
                .unwrap();
        }
        assert_eq!(ds.stats().partitions_created, 1);
        // A different intermediate opens a new partition.
        ds.put_chunk(
            ChunkKey::new("model.layer4", "n0", 0),
            &f64_chunk(vec![42.0; 100]),
        )
        .unwrap();
        assert_eq!(ds.stats().partitions_created, 2);
    }

    #[test]
    fn missing_key_not_found() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        assert!(matches!(
            ds.get_chunk(&ChunkKey::new("x", "y", 0)),
            Err(StoreError::NotFound)
        ));
        assert!(!ds.contains(&ChunkKey::new("x", "y", 0)));
    }

    #[test]
    fn partition_seals_at_target_size() {
        let dir = tempfile::tempdir().unwrap();
        let config = DataStoreConfig {
            policy: PlacementPolicy::ByIntermediate,
            partition_target_bytes: 4096,
            ..DataStoreConfig::default()
        };
        let mut ds = DataStore::open(dir.path(), config).unwrap();
        // Each chunk ~4000 bytes: each fill seals a partition.
        for i in 0..4 {
            let vals: Vec<f64> = (0..500).map(|j| (i * 1000 + j) as f64).collect();
            ds.put_chunk(ChunkKey::new("m.i", "c", i as u32), &f64_chunk(vals))
                .unwrap();
        }
        assert!(
            ds.disk_bytes().unwrap() > 0,
            "sealed partitions reached disk"
        );
        // All chunks still readable.
        for i in 0..4u32 {
            assert!(ds.get_chunk(&ChunkKey::new("m.i", "c", i)).is_ok());
        }
    }

    #[test]
    fn store_all_reput_of_identical_chunk_stores_again() {
        // STORE_ALL (`dedup = false`) must store every submitted chunk —
        // even a re-put of identical bytes under the very same key must not
        // short-circuit into a dedup reference.
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let chunk = f64_chunk(vec![7.0; 500]);
        let key = ChunkKey::new("m.i", "c", 0);
        let first = ds
            .put_chunk_with(key.clone(), &chunk, PlacementPolicy::ByIntermediate, false)
            .unwrap();
        let second = ds
            .put_chunk_with(key.clone(), &chunk, PlacementPolicy::ByIntermediate, false)
            .unwrap();
        assert!(matches!(first, PutOutcome::Stored(_)));
        assert!(
            matches!(second, PutOutcome::Stored(_)),
            "STORE_ALL re-put must store, got {second:?}"
        );
        let s = ds.stats();
        assert_eq!(s.dedup_hits, 0, "STORE_ALL never dedups");
        assert_eq!(s.chunks_stored, 2);
        assert_eq!(s.unique_bytes, s.logical_bytes);
        assert_eq!(ds.get_chunk(&key).unwrap(), chunk);
    }

    #[test]
    fn read_cache_evicts_one_partition_at_a_time() {
        let dir = tempfile::tempdir().unwrap();
        // Each partition holds one ~8 KB chunk; the cache budget fits two.
        let config = DataStoreConfig {
            policy: PlacementPolicy::ByIntermediate,
            mem_capacity: 20_000,
            partition_target_bytes: 64 << 10,
            ..DataStoreConfig::default()
        };
        let mut ds = DataStore::open(dir.path(), config).unwrap();
        let keys: Vec<ChunkKey> = (0..3)
            .map(|i| ChunkKey::new(format!("m.i{i}"), "c", 0))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            let vals: Vec<f64> = (0..1000).map(|j| (i * 10_000 + j) as f64).collect();
            ds.put_chunk(key.clone(), &f64_chunk(vals)).unwrap();
        }
        ds.flush().unwrap();

        let hits = ds.obs().counter("store.read_cache.hits");
        let misses = ds.obs().counter("store.read_cache.misses");
        let evictions = ds.obs().counter("store.read_cache.evictions");

        // Two partitions fit; the third displaces exactly the LRU victim.
        ds.get_chunk(&keys[0]).unwrap();
        ds.get_chunk(&keys[1]).unwrap();
        assert_eq!((misses.get(), evictions.get()), (2, 0));
        assert_eq!(ds.read_cache_len(), 2);
        ds.get_chunk(&keys[2]).unwrap();
        assert_eq!(misses.get(), 3);
        assert_eq!(evictions.get(), 1, "single-victim eviction, not clear-all");
        assert_eq!(ds.read_cache_len(), 2, "cache keeps every survivor");
        assert!(ds.read_cache_bytes() > 0 && ds.read_cache_bytes() <= 20_000);

        // keys[1] and keys[2] survived; reading them is a pure cache hit.
        let disk_reads = ds.obs().counter("store.get.disk_reads").get();
        ds.get_chunk(&keys[1]).unwrap();
        ds.get_chunk(&keys[2]).unwrap();
        assert_eq!(hits.get(), 2);
        assert_eq!(ds.obs().counter("store.get.disk_reads").get(), disk_reads);

        // keys[0] was the victim: a miss, and it evicts one more partition.
        ds.get_chunk(&keys[0]).unwrap();
        assert_eq!(misses.get(), 4);
        assert_eq!(evictions.get(), 2);
    }

    #[test]
    fn batch_read_matches_individual_gets() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let mut chunks = Vec::new();
        let mut keys = Vec::new();
        for i in 0..4 {
            let chunk = f64_chunk((0..800).map(|j| (i * 31 + j) as f64 * 0.5).collect());
            let key = ChunkKey::new(format!("m.i{i}"), "c", 0);
            ds.put_chunk(key.clone(), &chunk).unwrap();
            keys.push(key);
            chunks.push(chunk);
        }
        ds.flush().unwrap();
        // One more chunk left open in the buffer pool.
        let mem_chunk = f64_chunk(vec![42.0; 100]);
        let mem_key = ChunkKey::new("m.open", "c", 0);
        ds.put_chunk(mem_key.clone(), &mem_chunk).unwrap();
        keys.push(mem_key);
        chunks.push(mem_chunk);

        // Mixed order, with a duplicate request.
        let order = [4usize, 1, 3, 1, 0, 2];
        let batch_keys: Vec<ChunkKey> = order.iter().map(|&i| keys[i].clone()).collect();
        for parallelism in [1, 4] {
            ds.clear_read_cache();
            let got = ds.get_chunk_bytes_batch(&batch_keys, parallelism).unwrap();
            assert_eq!(got.len(), order.len());
            for (bytes, &i) in got.iter().zip(&order) {
                assert_eq!(
                    ColumnChunk::from_bytes(bytes).unwrap(),
                    chunks[i],
                    "parallelism {parallelism}"
                );
            }
        }
        // Unknown keys fail the whole batch up front.
        assert!(matches!(
            ds.get_chunk_bytes_batch(&[ChunkKey::new("no", "pe", 9)], 4),
            Err(StoreError::NotFound)
        ));
    }

    #[test]
    fn recover_quarantines_corrupt_partition_and_spares_the_rest() {
        use crate::backend::FaultyFs;
        use std::path::PathBuf;

        let fs = FaultyFs::new();
        let config = DataStoreConfig {
            policy: PlacementPolicy::ByIntermediate,
            mem_capacity: 1 << 20,
            partition_target_bytes: 64 << 10,
            ..DataStoreConfig::default()
        };
        let mut ds = DataStore::open_with_backend("/vfs", config, Arc::new(fs.clone())).unwrap();
        let good_key = ChunkKey::new("m.good", "c", 0);
        let bad_key = ChunkKey::new("m.bad", "c", 0);
        ds.put_chunk(
            good_key.clone(),
            &f64_chunk((0..500).map(|i| i as f64).collect()),
        )
        .unwrap();
        ds.put_chunk(bad_key.clone(), &f64_chunk(vec![9.0; 500]))
            .unwrap();
        ds.flush().unwrap();
        ds.clear_read_cache();

        // Bitrot in the partition holding bad_key (ByIntermediate: one
        // partition per intermediate, created in put order).
        fs.corrupt_durable(&PathBuf::from("/vfs/part_00000001.bin"), |bytes| {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
        });

        let report = ds.recover().unwrap();
        assert_eq!(report.partitions_ok, 1);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.missing, 0);
        assert_eq!(ds.obs().counter("store.recovery.quarantined").get(), 1);
        assert_eq!(ds.obs().counter("store.recovery.partitions_ok").get(), 1);

        // The corrupt partition fails loudly; the good one still reads.
        match ds.get_chunk(&bad_key) {
            Err(StoreError::Quarantined { partition, .. }) => assert_eq!(partition, 1),
            other => panic!("expected Quarantined, got {other:?}"),
        }
        assert!(matches!(
            ds.get_chunk_bytes_batch(&[bad_key], 2),
            Err(StoreError::Quarantined { .. })
        ));
        assert!(ds.get_chunk(&good_key).is_ok());
    }

    #[test]
    fn recover_counts_missing_partitions() {
        use crate::backend::FaultyFs;
        use std::path::PathBuf;

        let fs = FaultyFs::new();
        let config = DataStoreConfig {
            policy: PlacementPolicy::ByIntermediate,
            ..DataStoreConfig::default()
        };
        let mut ds = DataStore::open_with_backend("/vfs", config, Arc::new(fs.clone())).unwrap();
        let key = ChunkKey::new("m.i", "c", 0);
        ds.put_chunk(key.clone(), &f64_chunk(vec![1.0; 200]))
            .unwrap();
        ds.flush().unwrap();
        ds.clear_read_cache();
        // Simulate a crash that lost the partition file but kept the catalog.
        let backend = ds.backend();
        backend
            .remove_file(&PathBuf::from("/vfs/part_00000000.bin"))
            .unwrap();
        let report = ds.recover().unwrap();
        assert_eq!(report.partitions_ok, 0);
        assert_eq!(report.missing, 1);
        assert!(matches!(ds.get_chunk(&key), Err(StoreError::NotFound)));
    }

    #[test]
    fn read_attribution_diffs_per_fetch() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let chunk = f64_chunk((0..2000).map(|i| i as f64).collect());
        let key = ChunkKey::new("m.i", "c", 0);
        ds.put_chunk(key.clone(), &chunk).unwrap();
        ds.flush().unwrap();
        ds.clear_read_cache();

        let before = ds.read_attribution();
        ds.get_chunk(&key).unwrap();
        let delta = ds.read_attribution().since(&before);
        assert_eq!(delta.gets, 1);
        assert_eq!(delta.disk_reads, 1);
        assert_eq!(delta.partitions_touched, 1);
        assert!(delta.bytes > 0);
        let codec_total: u64 = delta.codec_bytes.iter().map(|(_, v)| *v).sum();
        assert!(codec_total > 0, "codec breakdown populated: {delta:?}");

        // Warm read: served by the read cache, nothing comes off disk.
        let before = ds.read_attribution();
        ds.get_chunk(&key).unwrap();
        let delta = ds.read_attribution().since(&before);
        assert_eq!(delta.disk_reads, 0);
        assert_eq!(delta.cache_hits, 1);
        assert!(delta.codec_bytes.is_empty());
    }

    #[test]
    fn parallel_partition_loads_link_to_calling_span() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let keys: Vec<ChunkKey> = (0..3)
            .map(|i| ChunkKey::new(format!("m.i{i}"), "c", 0))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            let vals: Vec<f64> = (0..1000).map(|j| (i * 7 + j) as f64).collect();
            ds.put_chunk(key.clone(), &f64_chunk(vals)).unwrap();
        }
        ds.flush().unwrap();
        ds.clear_read_cache();

        let obs = ds.obs().clone();
        let root = obs.span("batch");
        let root_id = root.id();
        ds.get_chunk_bytes_batch(&keys, 3).unwrap();
        root.finish();

        let loads: Vec<_> = obs
            .recent_spans()
            .into_iter()
            .filter(|r| r.name == "store.partition.load")
            .collect();
        assert_eq!(loads.len(), 3);
        for load in loads {
            assert_eq!(load.parent_id, Some(root_id), "worker span linked");
        }
    }

    #[test]
    fn dedup_across_pipelines_shrinks_physical_storage() {
        // 10 "pipelines" sharing 9 of 10 columns: physical storage should be
        // close to one pipeline's worth, not ten (Fig 6a behaviour).
        let (_dir, mut ds) = store(PlacementPolicy::BySimilarity { tau: 0.7 });
        for pipe in 0..10 {
            for col in 0..10 {
                let vals: Vec<f64> = if col == 9 {
                    // The per-pipeline unique column (predictions).
                    (0..1000).map(|i| (i + pipe * 7) as f64 * 1.3).collect()
                } else {
                    (0..1000).map(|i| (i * (col + 1)) as f64).collect()
                };
                ds.put_chunk(
                    ChunkKey::new(format!("p{pipe}.final"), format!("c{col}"), 0),
                    &f64_chunk(vals),
                )
                .unwrap();
            }
        }
        let s = ds.stats();
        assert_eq!(s.dedup_hits, 81, "9 shared cols x 9 later pipelines");
        assert!(
            s.unique_bytes * 4 < s.logical_bytes,
            "at least 4x dedup gain"
        );
    }

    #[test]
    fn retract_marks_bytes_dead_and_keeps_shared_chunks_live() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let shared = f64_chunk(vec![1.0; 500]);
        let unique = f64_chunk((0..500).map(|i| i as f64).collect());
        ds.put_chunk(ChunkKey::new("a.i", "c0", 0), &shared)
            .unwrap();
        ds.put_chunk(ChunkKey::new("a.i", "c1", 0), &unique)
            .unwrap();
        // Second intermediate dedups onto the shared chunk.
        ds.put_chunk(ChunkKey::new("b.i", "c0", 0), &shared)
            .unwrap();
        ds.flush().unwrap();
        assert_eq!(ds.dead_bytes(), 0);

        let out = ds.retract_intermediate("a.i");
        assert_eq!(out.keys_removed, 2);
        // Only the unique chunk died: the shared one is still referenced by b.i.
        assert!(out.bytes_released > 0);
        assert!(ds.dead_bytes() > 0);
        assert!(!ds.contains(&ChunkKey::new("a.i", "c0", 0)));
        assert!(matches!(
            ds.get_chunk(&ChunkKey::new("a.i", "c1", 0)),
            Err(StoreError::NotFound)
        ));
        assert_eq!(
            ds.get_chunk(&ChunkKey::new("b.i", "c0", 0)).unwrap(),
            shared
        );

        // Retracting b.i kills the shared chunk too.
        let out2 = ds.retract_intermediate("b.i");
        assert_eq!(out2.keys_removed, 1);
        assert!(out2.bytes_released > 0);
    }

    #[test]
    fn reput_after_retract_resurrects_dead_chunk() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let chunk = f64_chunk((0..400).map(|i| (i % 17) as f64).collect());
        let key = ChunkKey::new("m.i", "c", 0);
        ds.put_chunk(key.clone(), &chunk).unwrap();
        ds.flush().unwrap();
        ds.retract_intermediate("m.i");
        let dead = ds.dead_bytes();
        assert!(dead > 0);
        // Re-log the same bytes: dedup hit resurrects the dead chunk.
        let outcome = ds.put_chunk(key.clone(), &chunk).unwrap();
        assert_eq!(outcome, PutOutcome::Deduplicated);
        assert_eq!(ds.dead_bytes(), 0, "resurrected chunk no longer dead");
        assert_eq!(ds.get_chunk(&key).unwrap(), chunk);
    }

    #[test]
    fn overwrite_same_key_marks_old_bytes_dead() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let key = ChunkKey::new("m.i", "c", 0);
        let v1 = f64_chunk(vec![1.0; 300]);
        let v2 = f64_chunk(vec![2.0; 300]);
        ds.put_chunk(key.clone(), &v1).unwrap();
        ds.put_chunk(key.clone(), &v2).unwrap();
        // The displaced v1 chunk has no remaining reference.
        assert!(ds.dead_bytes() > 0);
        assert_eq!(ds.get_chunk(&key).unwrap(), v2);
    }

    #[test]
    fn compact_rewrites_partition_and_preserves_live_chunks() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        // Two intermediates sharing one partition policy-wise is not
        // guaranteed, so compare bytes before/after instead.
        for i in 0..4 {
            let vals: Vec<f64> = (0..500).map(|j| (i * 1000 + j) as f64).collect();
            ds.put_chunk(
                ChunkKey::new("dead.i", format!("c{i}"), 0),
                &f64_chunk(vals),
            )
            .unwrap();
        }
        let live_chunk = f64_chunk((0..500).map(|j| j as f64 * 0.5).collect());
        let live_key = ChunkKey::new("live.i", "c", 0);
        ds.put_chunk(live_key.clone(), &live_chunk).unwrap();
        ds.flush().unwrap();
        let disk_before = ds.disk_bytes().unwrap();

        let retracted = ds.retract_intermediate("dead.i");
        assert_eq!(retracted.keys_removed, 4);
        let report = ds.compact(1.0).unwrap();
        assert_eq!(report.bytes_reclaimed, retracted.bytes_released);
        assert!(report.partitions_rewritten + report.partitions_removed > 0);
        assert_eq!(report.chunks_dropped, 4);
        assert_eq!(ds.dead_bytes(), 0);
        assert!(
            ds.disk_bytes().unwrap() < disk_before,
            "compaction shrank the on-disk footprint"
        );
        // The live chunk still reads back byte-identically (cold, off disk).
        ds.clear_read_cache();
        assert_eq!(ds.get_chunk(&live_key).unwrap(), live_chunk);
        // A second pass finds nothing to do.
        let again = ds.compact(1.0).unwrap();
        assert_eq!(again.bytes_reclaimed, 0);
        assert_eq!(again.partitions_rewritten, 0);
    }

    #[test]
    fn compact_removes_fully_dead_partition_files() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        for i in 0..3 {
            let vals: Vec<f64> = (0..800).map(|j| (i * 31 + j) as f64).collect();
            ds.put_chunk(
                ChunkKey::new("gone.i", format!("c{i}"), 0),
                &f64_chunk(vals),
            )
            .unwrap();
        }
        ds.flush().unwrap();
        assert!(ds.disk_bytes().unwrap() > 0);
        ds.retract_intermediate("gone.i");
        let report = ds.compact(1.0).unwrap();
        assert_eq!(report.partitions_removed, 1);
        assert_eq!(ds.disk_bytes().unwrap(), 0, "file deleted outright");
        assert_eq!(ds.dead_bytes(), 0);
    }

    #[test]
    fn compact_respects_live_ratio_threshold() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        // 4 chunks in one intermediate's partition; retract nothing yet.
        for i in 0..4 {
            let vals: Vec<f64> = (0..500).map(|j| (i * 997 + j) as f64).collect();
            ds.put_chunk(ChunkKey::new("m.i", format!("c{i}"), 0), &f64_chunk(vals))
                .unwrap();
        }
        // A second intermediate in its own partition; retract one of its two.
        for c in ["x", "y"] {
            let vals: Vec<f64> = (0..500).map(|j| j as f64 * 3.3).collect();
            let vals = if c == "y" {
                vals.iter().map(|v| v + 1e6).collect()
            } else {
                vals
            };
            ds.put_chunk(ChunkKey::new("n.i", c, 0), &f64_chunk(vals))
                .unwrap();
        }
        ds.flush().unwrap();
        // Kill one column of n.i by overwriting it: 50% of that partition dies.
        ds.put_chunk(
            ChunkKey::new("n.i", "y", 0),
            &f64_chunk((0..500).map(|j| j as f64 - 7.0).collect()),
        )
        .unwrap();
        let dead = ds.dead_bytes();
        assert!(dead > 0);
        // Threshold 0.2: a partition that is 50% live stays put.
        let report = ds.compact(0.2).unwrap();
        assert_eq!(report.bytes_reclaimed, 0, "ratio above threshold: skip");
        assert_eq!(ds.dead_bytes(), dead);
        // Threshold 0.6: now it qualifies.
        let report = ds.compact(0.6).unwrap();
        assert_eq!(report.bytes_reclaimed, dead);
    }

    #[test]
    fn catalog_roundtrip_restores_dead_byte_accounting() {
        let dir = tempfile::tempdir().unwrap();
        let config = DataStoreConfig {
            policy: PlacementPolicy::ByIntermediate,
            mem_capacity: 1 << 20,
            partition_target_bytes: 64 << 10,
            ..DataStoreConfig::default()
        };
        let mut ds = DataStore::open(dir.path(), config.clone()).unwrap();
        for i in 0..3 {
            let vals: Vec<f64> = (0..600).map(|j| (i * 13 + j) as f64).collect();
            ds.put_chunk(ChunkKey::new("a.i", format!("c{i}"), 0), &f64_chunk(vals))
                .unwrap();
        }
        ds.put_chunk(
            ChunkKey::new("b.i", "c", 0),
            &f64_chunk((0..600).map(|j| j as f64 * 2.5).collect()),
        )
        .unwrap();
        ds.flush().unwrap();
        ds.retract_intermediate("a.i");
        let dead_before = ds.dead_bytes();
        assert!(dead_before > 0);
        let catalog = ds.export_catalog();
        drop(ds);

        let mut ds2 = DataStore::open(dir.path(), config).unwrap();
        ds2.import_catalog(catalog);
        assert_eq!(
            ds2.dead_bytes(),
            dead_before,
            "dead-byte accounting survives reopen"
        );
        // Compaction after reopen reclaims the same bytes, and the live
        // chunk still reads.
        let report = ds2.compact(1.0).unwrap();
        assert_eq!(report.bytes_reclaimed, dead_before);
        assert_eq!(
            ds2.get_chunk(&ChunkKey::new("b.i", "c", 0)).unwrap(),
            f64_chunk((0..600).map(|j| j as f64 * 2.5).collect())
        );
    }

    #[test]
    fn compact_skips_open_partitions() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let key = ChunkKey::new("m.i", "c", 0);
        ds.put_chunk(key.clone(), &f64_chunk(vec![5.0; 400]))
            .unwrap();
        // No flush: the partition is still open in the buffer pool.
        ds.retract_intermediate("m.i");
        assert!(ds.dead_bytes() > 0);
        let report = ds.compact(1.0).unwrap();
        assert_eq!(report.partitions_scanned, 0, "open partition skipped");
        // Sealing writes the file (dead bytes and all); compaction then
        // reclaims it.
        ds.flush().unwrap();
        let report = ds.compact(1.0).unwrap();
        assert_eq!(report.partitions_removed, 1);
        assert_eq!(ds.dead_bytes(), 0);
    }

    /// A slowly-varying base and a near-duplicate differing in a handful of
    /// positions — similar enough for LSH, and the XOR frame collapses.
    fn near_pair() -> (ColumnChunk, ColumnChunk) {
        let base: Vec<f64> = (0..4096).map(|i| (i % 97) as f64).collect();
        let mut near = base.clone();
        for i in (0..near.len()).step_by(512) {
            near[i] += 1.0;
        }
        (f64_chunk(base), f64_chunk(near))
    }

    #[test]
    fn near_duplicate_put_stores_delta_and_reads_back() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let (base, near) = near_pair();
        ds.put_chunk(ChunkKey::new("m.base", "c", 0), &base)
            .unwrap();
        let k = ChunkKey::new("m.near", "c", 0);
        let (outcome, stored) = ds
            .put_chunk_sized(k.clone(), &near, PlacementPolicy::ByIntermediate, true)
            .unwrap();
        assert!(matches!(outcome, PutOutcome::Stored(_)));
        let s = ds.stats();
        assert_eq!(s.delta_puts, 1, "near-duplicate should store as a delta");
        assert!(
            (stored as usize) < near.to_bytes().len() / 2,
            "frame {stored} vs raw {}",
            near.to_bytes().len()
        );
        assert_eq!(s.delta_bytes_saved, near.to_bytes().len() as u64 - stored);
        // Warm read (open partition) rehydrates transparently.
        assert_eq!(ds.get_chunk(&k).unwrap(), near);
        // Cold read off disk too.
        ds.flush().unwrap();
        ds.clear_read_cache();
        assert_eq!(ds.get_chunk(&k).unwrap(), near);
        assert_eq!(
            ds.get_chunk(&ChunkKey::new("m.base", "c", 0)).unwrap(),
            base
        );
        // EXPLAIN attribution names the delta codec.
        let attr = ds.read_attribution();
        assert!(
            attr.codec_bytes
                .iter()
                .any(|(c, b)| c.starts_with("delta:") && *b > 0),
            "missing delta codec attribution: {:?}",
            attr.codec_bytes
        );
        assert!(ds.obs().counter("store.delta.rehydrations").get() >= 2);
    }

    #[test]
    fn batch_reads_resolve_deltas_at_every_parallelism() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let (base, near) = near_pair();
        let kb = ChunkKey::new("m.base", "c", 0);
        let kn = ChunkKey::new("m.near", "c", 0);
        ds.put_chunk(kb.clone(), &base).unwrap();
        ds.put_chunk(kn.clone(), &near).unwrap();
        assert_eq!(ds.stats().delta_puts, 1);
        ds.flush().unwrap();
        let keys = [kn.clone(), kb.clone(), kn.clone()];
        let expect = [near.to_bytes(), base.to_bytes(), near.to_bytes()];
        for par in [1usize, 2, 4, 0] {
            ds.clear_read_cache();
            let got = ds.get_chunk_bytes_batch(&keys, par).unwrap();
            assert_eq!(got.len(), 3);
            for (g, e) in got.iter().zip(expect.iter()) {
                assert_eq!(g, e, "parallelism {par}");
            }
        }
    }

    #[test]
    fn pinned_base_survives_retraction_and_compaction() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let (base, near) = near_pair();
        ds.put_chunk(ChunkKey::new("m.base", "c", 0), &base)
            .unwrap();
        let kn = ChunkKey::new("m.near", "c", 0);
        ds.put_chunk(kn.clone(), &near).unwrap();
        assert_eq!(ds.stats().delta_puts, 1);
        ds.flush().unwrap();
        // Retract the base's only key. The delta's pin must keep its bytes.
        ds.retract_intermediate("m.base");
        ds.compact(1.0).unwrap();
        ds.clear_read_cache();
        assert_eq!(ds.get_chunk(&kn).unwrap(), near, "base compacted away");
        assert!(matches!(
            ds.get_chunk(&ChunkKey::new("m.base", "c", 0)),
            Err(StoreError::NotFound)
        ));
        // Dropping the delta releases the pin; now everything can go.
        ds.retract_intermediate("m.near");
        ds.compact(1.0).unwrap();
        assert_eq!(ds.dead_bytes(), 0);
    }

    #[test]
    fn dedup_resurrect_of_delta_repins_base() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let (base, near) = near_pair();
        ds.put_chunk(ChunkKey::new("m.base", "c", 0), &base)
            .unwrap();
        ds.put_chunk(ChunkKey::new("m.near", "c", 0), &near)
            .unwrap();
        assert_eq!(ds.stats().delta_puts, 1);
        ds.flush().unwrap();
        // Drop the delta (releases the base pin), then re-put identical
        // bytes under a fresh key before compaction: the dedup short-circuit
        // resurrects the frame and must re-pin the base.
        ds.retract_intermediate("m.near");
        let k2 = ChunkKey::new("m.again", "c", 0);
        let (outcome, stored) = ds
            .put_chunk_sized(k2.clone(), &near, PlacementPolicy::ByIntermediate, true)
            .unwrap();
        assert_eq!(outcome, PutOutcome::Deduplicated);
        assert!(
            (stored as usize) < near.to_bytes().len(),
            "dedup hit must report the stored frame length, not the raw length"
        );
        ds.retract_intermediate("m.base");
        ds.compact(1.0).unwrap();
        ds.clear_read_cache();
        assert_eq!(ds.get_chunk(&k2).unwrap(), near);
    }

    #[test]
    fn catalog_roundtrip_preserves_deltas_pins_and_lsh() {
        let dir = tempfile::tempdir().unwrap();
        let config = DataStoreConfig {
            policy: PlacementPolicy::ByIntermediate,
            mem_capacity: 1 << 20,
            partition_target_bytes: 64 << 10,
            ..DataStoreConfig::default()
        };
        let (base, near) = near_pair();
        let kb = ChunkKey::new("m.base", "c", 0);
        let kn = ChunkKey::new("m.near", "c", 0);
        let catalog = {
            let mut ds = DataStore::open(dir.path(), config.clone()).unwrap();
            ds.put_chunk(kb.clone(), &base).unwrap();
            ds.put_chunk(kn.clone(), &near).unwrap();
            assert_eq!(ds.stats().delta_puts, 1);
            // Retract the base's key so it survives only through its pin —
            // the catalog must carry it as an extra.
            ds.retract_intermediate("m.base");
            ds.flush().unwrap();
            ds.export_catalog()
        };
        assert_eq!(catalog.deltas.len(), 1);
        assert!(!catalog.extras.is_empty(), "pinned base must export");
        assert_eq!(catalog.lsh_items.len(), 2);

        let mut ds = DataStore::open(dir.path(), config).unwrap();
        ds.import_catalog(catalog);
        assert_eq!(
            ds.get_chunk(&kn).unwrap(),
            near,
            "delta readable after reopen"
        );
        // The pinned base must not be reclaimable while the delta lives.
        ds.compact(1.0).unwrap();
        ds.clear_read_cache();
        assert_eq!(ds.get_chunk(&kn).unwrap(), near);
        // The rebuilt LSH index still finds the old chunks: a third
        // near-duplicate put after reopen delta-encodes against them.
        let mut third = base.data.to_f64();
        third[0] += 2.0;
        ds.put_chunk(ChunkKey::new("m.third", "c", 0), &f64_chunk(third))
            .unwrap();
        assert_eq!(
            ds.stats().delta_puts,
            2,
            "reopened store must keep finding delta bases"
        );
    }

    #[test]
    fn similarity_placements_continue_after_reopen() {
        let dir = tempfile::tempdir().unwrap();
        let config = DataStoreConfig {
            policy: PlacementPolicy::BySimilarity { tau: 0.5 },
            mem_capacity: 1 << 20,
            partition_target_bytes: 64 << 10,
            // Isolate the similarity-placement counter from delta encoding.
            delta_enabled: false,
            ..DataStoreConfig::default()
        };
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let catalog = {
            let mut ds = DataStore::open(dir.path(), config.clone()).unwrap();
            for v in 0..3u32 {
                let mut c = vals.clone();
                c[v as usize] += 0.001;
                ds.put_chunk(ChunkKey::new(format!("m{v}"), "c", 0), &f64_chunk(c))
                    .unwrap();
            }
            assert!(ds.stats().similarity_placements >= 1);
            ds.flush().unwrap();
            ds.export_catalog()
        };
        let before = catalog.stats.similarity_placements;
        let mut ds = DataStore::open(dir.path(), config).unwrap();
        ds.import_catalog(catalog);
        // The first put after reopen opens a fresh partition (every imported
        // item points at a sealed one), but it joins the rebuilt index — so
        // the next similar put clusters with it. Before LSH state was
        // persisted, `query_best` saw only sealed candidates forever and the
        // counter stalled for good.
        for v in 0..2u32 {
            let mut c = vals.clone();
            c[500 + v as usize] += 0.001;
            ds.put_chunk(ChunkKey::new(format!("m9{v}"), "c", 0), &f64_chunk(c))
                .unwrap();
        }
        assert!(
            ds.stats().similarity_placements > before,
            "similarity placement must keep counting after reopen"
        );
    }

    #[test]
    fn reencode_as_delta_squeezes_a_raw_chunk() {
        let (_dir, mut ds) = store(PlacementPolicy::ByIntermediate);
        let (base, near) = near_pair();
        ds.put_chunk(ChunkKey::new("m.base", "c", 0), &base)
            .unwrap();
        // dedup=false puts compute no signature and never delta-encode:
        // this chunk lands raw, like a THRESHOLD_QT demotion result.
        let kn = ChunkKey::new("m.near", "c", 0);
        ds.put_chunk_with(kn.clone(), &near, PlacementPolicy::ByIntermediate, false)
            .unwrap();
        assert_eq!(ds.stats().delta_puts, 0);
        let raw_len = near.to_bytes().len() as u64;
        let new_len = ds.reencode_as_delta(&kn).unwrap();
        assert!(
            new_len < raw_len,
            "re-encode should win: {new_len} vs {raw_len}"
        );
        assert_eq!(ds.stats().delta_puts, 1);
        assert_eq!(ds.get_chunk(&kn).unwrap(), near);
        // A second attempt is a no-op at the same length.
        assert_eq!(ds.reencode_as_delta(&kn).unwrap(), new_len);
        // The old raw copy is dead; compaction reclaims it and reads hold.
        ds.flush().unwrap();
        assert!(ds.dead_bytes() >= raw_len);
        ds.compact(1.0).unwrap();
        ds.clear_read_cache();
        assert_eq!(ds.get_chunk(&kn).unwrap(), near);
        assert_eq!(
            ds.get_chunk(&ChunkKey::new("m.base", "c", 0)).unwrap(),
            base
        );
        // The base itself refuses re-encoding (deltas depend on its bytes).
        let kb = ChunkKey::new("m.base", "c", 0);
        let base_len = ds.reencode_as_delta(&kb).unwrap();
        assert_eq!(base_len, base.to_bytes().len() as u64);
        assert_eq!(ds.stats().delta_puts, 1);
    }
}
