//! Partitions: groups of ColumnChunks that are compressed and stored together.

use std::collections::HashMap;

use mistique_compress::{compress_auto, decompress};
use mistique_dedup::ContentDigest;

use crate::StoreError;

/// Identifier of a Partition within one DataStore.
pub type PartitionId = u64;

/// An open, in-memory Partition accumulating serialized chunks.
///
/// Chunks are kept as their canonical serialized bytes; the whole Partition
/// is compressed as a single buffer when written out, so LZSS matches can
/// reach *across* chunk boundaries — that is exactly what makes co-locating
/// similar chunks pay off (Sec 4.2, Fig 14).
#[derive(Clone, Debug)]
pub struct Partition {
    id: PartitionId,
    chunks: Vec<(ContentDigest, Vec<u8>)>,
    index: HashMap<ContentDigest, usize>,
    raw_bytes: usize,
}

impl Partition {
    /// Create an empty partition.
    pub fn new(id: PartitionId) -> Partition {
        Partition {
            id,
            chunks: Vec::new(),
            index: HashMap::new(),
            raw_bytes: 0,
        }
    }

    /// The partition id.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Number of chunks held.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// True when no chunks are held.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Total uncompressed bytes of the chunks held.
    pub fn raw_bytes(&self) -> usize {
        self.raw_bytes
    }

    /// Add a serialized chunk under its content digest.
    pub fn add(&mut self, digest: ContentDigest, bytes: Vec<u8>) {
        self.raw_bytes += bytes.len();
        self.index.insert(digest, self.chunks.len());
        self.chunks.push((digest, bytes));
    }

    /// Fetch a chunk's serialized bytes by digest (O(1) via the index).
    pub fn get(&self, digest: ContentDigest) -> Option<&[u8]> {
        self.index
            .get(&digest)
            .map(|&i| self.chunks[i].1.as_slice())
    }

    /// Digests of the held chunks in insertion order — the exact chunk order
    /// a sealed file carries, which is what makes compaction rewrites
    /// deterministic.
    pub fn digests(&self) -> impl Iterator<Item = ContentDigest> + '_ {
        self.chunks.iter().map(|(d, _)| *d)
    }

    /// A new partition with the same id holding only the chunks whose
    /// digest passes `keep`, preserving the original chunk order. This is
    /// the compaction rewrite: dead chunks are dropped, live ones keep
    /// their relative placement (so similarity-driven compression locality
    /// survives the rewrite).
    pub fn filtered(&self, keep: impl Fn(ContentDigest) -> bool) -> Partition {
        let mut out = Partition::new(self.id);
        for (d, b) in &self.chunks {
            if keep(*d) {
                out.add(*d, b.clone());
            }
        }
        out
    }

    /// Serialize and compress the partition into its on-disk representation:
    /// one `compress_auto` frame over
    /// `[n: u32][(digest hi/lo: u64 u64, len: u32, bytes)...]`, followed by
    /// an xxhash64 integrity trailer over the compressed frame. Torn writes
    /// and silent disk corruption are detected at [`Partition::unseal`].
    pub fn seal(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.raw_bytes + self.chunks.len() * 20 + 4);
        buf.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for (digest, bytes) in &self.chunks {
            buf.extend_from_slice(&digest.0.to_le_bytes());
            buf.extend_from_slice(&digest.1.to_le_bytes());
            buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            buf.extend_from_slice(bytes);
        }
        let mut out = compress_auto(&buf);
        let checksum = mistique_dedup::xxhash64(&out, 0x5ea1);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Verify a sealed partition's integrity trailer without decompressing
    /// the payload — the cheap check the recovery sweep runs over every
    /// partition file. Torn writes and bitrot both fail here.
    pub fn verify_checksum(sealed: &[u8]) -> Result<(), StoreError> {
        if sealed.len() < 8 {
            return Err(StoreError::CorruptPartition("missing checksum"));
        }
        let (frame, trailer) = sealed.split_at(sealed.len() - 8);
        let expected = u64::from_le_bytes(trailer.try_into().unwrap());
        if mistique_dedup::xxhash64(frame, 0x5ea1) != expected {
            return Err(StoreError::CorruptPartition("checksum mismatch"));
        }
        Ok(())
    }

    /// Decode a sealed partition back into an in-memory one, verifying the
    /// integrity trailer first.
    pub fn unseal(id: PartitionId, sealed: &[u8]) -> Result<Partition, StoreError> {
        Self::verify_checksum(sealed)?;
        let frame = &sealed[..sealed.len() - 8];
        let buf = decompress(frame)?;
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], StoreError> {
            let end = *pos + n;
            if end > buf.len() {
                return Err(StoreError::CorruptPartition("truncated"));
            }
            let s = &buf[*pos..end];
            *pos = end;
            Ok(s)
        };
        let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut part = Partition::new(id);
        for _ in 0..n {
            let hi = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let lo = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let bytes = take(&mut pos, len)?.to_vec();
            part.add(ContentDigest(hi, lo), bytes);
        }
        if pos != buf.len() {
            return Err(StoreError::CorruptPartition("trailing bytes"));
        }
        Ok(part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mistique_dedup::content_digest;

    fn chunk(bytes: &[u8]) -> (ContentDigest, Vec<u8>) {
        (content_digest(bytes), bytes.to_vec())
    }

    #[test]
    fn add_and_get() {
        let mut p = Partition::new(1);
        let (d, b) = chunk(b"hello chunk");
        p.add(d, b.clone());
        assert_eq!(p.get(d), Some(b.as_slice()));
        assert_eq!(p.len(), 1);
        assert_eq!(p.raw_bytes(), b.len());
        assert!(p.get(content_digest(b"other")).is_none());
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let mut p = Partition::new(42);
        for i in 0u32..20 {
            let bytes: Vec<u8> = (0..100).map(|j| ((i + j) % 13) as u8).collect();
            p.add(content_digest(&bytes), bytes);
        }
        let sealed = p.seal();
        let back = Partition::unseal(42, &sealed).unwrap();
        assert_eq!(back.len(), p.len());
        assert_eq!(back.raw_bytes(), p.raw_bytes());
        for (d, b) in &p.chunks {
            assert_eq!(back.get(*d), Some(b.as_slice()));
        }
    }

    #[test]
    fn similar_chunks_compress_better_together() {
        // Partition A: 10 near-identical chunks. Partition B: 10 unrelated.
        let mut state = 5u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 56) as u8
        };
        let base: Vec<u8> = (0..4096).map(|_| rnd()).collect();

        let mut similar = Partition::new(1);
        for i in 0..10u8 {
            let mut b = base.clone();
            b[0] = i; // tiny difference
            similar.add(content_digest(&b), b);
        }
        let mut dissimilar = Partition::new(2);
        for _ in 0..10 {
            let b: Vec<u8> = (0..4096).map(|_| rnd()).collect();
            dissimilar.add(content_digest(&b), b);
        }
        let s = similar.seal().len();
        let d = dissimilar.seal().len();
        assert!(
            (s as f64) < d as f64 * 0.5,
            "similar partition should compress much better: {s} vs {d}"
        );
    }

    #[test]
    fn filtered_preserves_order_and_drops_dead_chunks() {
        let mut p = Partition::new(7);
        let entries: Vec<(ContentDigest, Vec<u8>)> = (0u8..6)
            .map(|i| {
                let bytes = vec![i; 32];
                (content_digest(&bytes), bytes)
            })
            .collect();
        for (d, b) in &entries {
            p.add(*d, b.clone());
        }
        let live: Vec<ContentDigest> = [0usize, 2, 5].iter().map(|&i| entries[i].0).collect();
        let keep: std::collections::HashSet<_> = live.iter().copied().collect();
        let f = p.filtered(|d| keep.contains(&d));
        assert_eq!(f.id(), 7);
        assert_eq!(f.len(), 3);
        assert_eq!(f.digests().collect::<Vec<_>>(), live, "order preserved");
        assert_eq!(f.raw_bytes(), 3 * 32);
        for (i, (d, b)) in entries.iter().enumerate() {
            if keep.contains(d) {
                assert_eq!(f.get(*d), Some(b.as_slice()));
            } else {
                assert!(f.get(*d).is_none(), "chunk {i} dropped");
            }
        }
        // The rewrite round-trips through seal/unseal like any partition.
        let back = Partition::unseal(7, &f.seal()).unwrap();
        assert_eq!(back.digests().collect::<Vec<_>>(), live);
    }

    #[test]
    fn empty_partition_roundtrips() {
        let p = Partition::new(0);
        let back = Partition::unseal(0, &p.seal()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corrupt_sealed_bytes_rejected() {
        let mut p = Partition::new(1);
        let (d, b) = chunk(b"data");
        p.add(d, b);
        let mut sealed = p.seal();
        sealed.truncate(sealed.len() - 1);
        assert!(Partition::unseal(1, &sealed).is_err());
        assert!(Partition::unseal(1, &[]).is_err());
    }
}
