//! Pluggable filesystem backends for the store's durability-critical I/O.
//!
//! Everything the store writes to disk — partition files and (via
//! `mistique-core`) the manifest — goes through a [`StorageBackend`], so the
//! exact syscall sequence is a swappable, testable surface:
//!
//! * [`RealFs`] forwards to `std::fs` and actually fsyncs.
//! * [`FaultyFs`] is a deterministic in-memory filesystem that models what a
//!   power cut can do to unsynced state: it tracks *durable* vs *pending*
//!   (written-but-not-fsynced) content per file, holds renames un-committed
//!   until the parent directory is fsynced, counts every backend call so a
//!   crash can be injected at an exact syscall index, and can inject
//!   transient `EIO` / `ENOSPC` style faults.
//!
//! The write discipline itself lives in [`StorageBackend::write_atomic`]:
//! tmp file → fsync(file) → rename → fsync(dir). `tests/crash_safety.rs`
//! enumerates a crash at every syscall of a log→persist run and asserts that
//! reopen always sees either the pre-persist or the post-persist state.

use std::collections::{HashMap, HashSet};
use std::ffi::OsString;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// Filesystem operations the store performs, as one mockable surface.
///
/// Implementations must be shareable across threads (the concurrent read
/// path fans partition reads out over scoped threads).
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Create a directory and any missing ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Read a whole file.
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Write a whole file (create or truncate). Not durable until
    /// [`StorageBackend::sync_file`].
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// fsync a file's contents.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename a file. Not durable until the parent directory is
    /// synced via [`StorageBackend::sync_dir`].
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// fsync a directory, making completed renames in it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// List the files (not subdirectories) in a directory, sorted by path.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether a file or directory exists (metadata peek; never injected).
    fn exists(&self, path: &Path) -> bool;
    /// Size of a file in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// Crash-safe whole-file write: write to `<path>.tmp`, fsync it, rename
    /// over `path`, then fsync the parent directory. A crash at any point
    /// leaves either the old content (plus at most an orphaned tmp file, in
    /// the directory, which recovery removes) or the complete new content —
    /// never a torn file at `path`.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_path(path);
        self.write_file(&tmp, bytes)?;
        self.sync_file(&tmp)?;
        self.rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            self.sync_dir(parent)?;
        }
        Ok(())
    }
}

/// The tmp-file sibling used by [`StorageBackend::write_atomic`]:
/// `<path>.tmp` in the same directory, so the final rename never crosses a
/// filesystem boundary.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os: OsString = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// The real filesystem, with real fsyncs.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealFs;

impl StorageBackend for RealFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // On unix, fsync on a read-only directory handle commits renames.
        fs::File::open(dir)?.sync_all()
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        fs::metadata(path).map(|m| m.len())
    }
}

/// What happens to written-but-unsynced file content at a power cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TornWrite {
    /// Unsynced writes vanish entirely (nothing hit the platter).
    DropAll,
    /// Unsynced writes survive as a prefix of half their length — the torn
    /// write case atomic rename discipline must tolerate.
    TornHalf,
    /// Unsynced writes happen to survive intact (the luckiest outcome — and
    /// the one that exposes code relying on luck instead of fsync).
    KeepAll,
}

/// One file in the simulated filesystem: content that has been fsynced vs
/// content that is only in the (simulated) page cache.
#[derive(Clone, Debug, Default)]
struct VFile {
    durable: Option<Vec<u8>>,
    pending: Option<Vec<u8>>,
}

impl VFile {
    fn visible(&self) -> Option<&Vec<u8>> {
        self.pending.as_ref().or(self.durable.as_ref())
    }
}

/// A rename that has happened in the namespace but is not yet committed by a
/// directory fsync. `displaced` is whatever used to live at `to`.
#[derive(Debug)]
struct RenameRec {
    from: PathBuf,
    to: PathBuf,
    displaced: Option<VFile>,
}

#[derive(Debug, Default)]
struct FaultyState {
    files: HashMap<PathBuf, VFile>,
    dirs: HashSet<PathBuf>,
    pending_renames: Vec<RenameRec>,
    /// Backend calls so far (the crash-point clock).
    ops: u64,
    /// Crash when `ops` reaches this index (1-based).
    crash_at: Option<u64>,
    crashed: bool,
    /// One-shot transient fault at an op index.
    fail_at: Option<(u64, io::ErrorKind)>,
}

/// Deterministic fault-injecting in-memory filesystem.
///
/// Clones share state, so a test can hold a handle while the store owns
/// another. Every backend call (except [`StorageBackend::exists`]) ticks the
/// op counter; [`FaultyFs::crash_after`] arms a crash at an exact op index,
/// after which every call fails as if the process lost power mid-syscall.
/// [`FaultyFs::power_cut`] then resolves what survived — durable content
/// always, pending content per the chosen [`TornWrite`] policy, uncommitted
/// renames rolled back — and disarms, so the same backend can be reopened to
/// inspect the post-crash disk.
#[derive(Clone, Debug, Default)]
pub struct FaultyFs {
    state: Arc<Mutex<FaultyState>>,
}

fn crash_error() -> io::Error {
    io::Error::other("simulated power loss (FaultyFs crash point)")
}

impl FaultyFs {
    /// An empty simulated filesystem with no faults armed.
    pub fn new() -> FaultyFs {
        FaultyFs::default()
    }

    /// Backend calls made so far.
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Arm a crash: the `n`-th backend call from the beginning (1-based)
    /// fails and every later call fails too, until [`FaultyFs::power_cut`].
    pub fn crash_after(&self, n: u64) {
        self.state.lock().unwrap().crash_at = Some(n);
    }

    /// Inject a one-shot transient fault (e.g. `ErrorKind::Interrupted` for
    /// EIO, `ErrorKind::StorageFull` for ENOSPC) at the given op index. The
    /// op has no effect; later calls succeed again.
    pub fn inject_error(&self, at_op: u64, kind: io::ErrorKind) {
        self.state.lock().unwrap().fail_at = Some((at_op, kind));
    }

    /// Whether an armed crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Resolve the simulated power cut: roll back renames never committed by
    /// a directory fsync, apply `policy` to written-but-unsynced content,
    /// and disarm all faults so the filesystem can be reopened.
    pub fn power_cut(&self, policy: TornWrite) {
        let mut st = self.state.lock().unwrap();
        st.crashed = false;
        st.crash_at = None;
        st.fail_at = None;
        let renames: Vec<RenameRec> = st.pending_renames.drain(..).collect();
        if policy != TornWrite::KeepAll {
            for rec in renames.into_iter().rev() {
                if let Some(moved) = st.files.remove(&rec.to) {
                    st.files.insert(rec.from.clone(), moved);
                }
                if let Some(displaced) = rec.displaced {
                    st.files.insert(rec.to.clone(), displaced);
                }
            }
        }
        for file in st.files.values_mut() {
            if let Some(pending) = file.pending.take() {
                match policy {
                    TornWrite::KeepAll => file.durable = Some(pending),
                    TornWrite::DropAll => {}
                    TornWrite::TornHalf => {
                        let keep = pending.len() / 2;
                        file.durable = Some(pending[..keep].to_vec());
                    }
                }
            }
        }
        st.files.retain(|_, f| f.durable.is_some());
    }

    /// Paths currently visible in the namespace, sorted.
    pub fn visible_files(&self) -> Vec<PathBuf> {
        let st = self.state.lock().unwrap();
        let mut out: Vec<PathBuf> = st
            .files
            .iter()
            .filter(|(_, f)| f.visible().is_some())
            .map(|(p, _)| p.clone())
            .collect();
        out.sort();
        out
    }

    /// Overwrite a file's durable content directly, bypassing fault
    /// injection — for tests that model external corruption (bitrot).
    pub fn corrupt_durable(&self, path: &Path, mutate: impl FnOnce(&mut Vec<u8>)) {
        let mut st = self.state.lock().unwrap();
        if let Some(file) = st.files.get_mut(path) {
            let mut bytes = file
                .durable
                .clone()
                .or_else(|| file.pending.clone())
                .unwrap_or_default();
            mutate(&mut bytes);
            file.durable = Some(bytes);
            file.pending = None;
        }
    }

    /// Tick the op clock and fire any armed fault. Returns the locked state
    /// for the op to apply its effect; an `Err` means the op had no effect.
    fn op(&self) -> io::Result<MutexGuard<'_, FaultyState>> {
        let mut st = self.state.lock().unwrap();
        if st.crashed {
            return Err(crash_error());
        }
        st.ops += 1;
        let now = st.ops;
        if let Some((at, kind)) = st.fail_at {
            if at == now {
                st.fail_at = None;
                return Err(io::Error::new(kind, "injected transient fault"));
            }
        }
        if let Some(at) = st.crash_at {
            if now >= at {
                st.crashed = true;
                return Err(crash_error());
            }
        }
        Ok(st)
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("no such file: {}", path.display()),
    )
}

impl StorageBackend for FaultyFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.op()?;
        let mut cur = dir.to_path_buf();
        loop {
            st.dirs.insert(cur.clone());
            match cur.parent() {
                Some(p) if !p.as_os_str().is_empty() => cur = p.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        let st = self.op()?;
        st.files
            .get(path)
            .and_then(|f| f.visible().cloned())
            .ok_or_else(|| not_found(path))
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.op()?;
        st.files.entry(path.to_path_buf()).or_default().pending = Some(bytes.to_vec());
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.op()?;
        let file = st.files.get_mut(path).ok_or_else(|| not_found(path))?;
        if let Some(pending) = file.pending.take() {
            file.durable = Some(pending);
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.op()?;
        let moved = st.files.remove(from).ok_or_else(|| not_found(from))?;
        let displaced = st.files.remove(to);
        st.files.insert(to.to_path_buf(), moved);
        st.pending_renames.push(RenameRec {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
            displaced,
        });
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        // Removal is modeled as immediately durable: recovery (the only
        // caller) runs after the crash window the harness enumerates.
        let mut st = self.op()?;
        st.files.remove(path).ok_or_else(|| not_found(path))?;
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.op()?;
        st.pending_renames
            .retain(|rec| rec.to.parent() != Some(dir));
        st.dirs.insert(dir.to_path_buf());
        Ok(())
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let st = self.op()?;
        let mut out: Vec<PathBuf> = st
            .files
            .iter()
            .filter(|(p, f)| p.parent() == Some(dir) && f.visible().is_some())
            .map(|(p, _)| p.clone())
            .collect();
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        let st = self.state.lock().unwrap();
        st.files.get(path).is_some_and(|f| f.visible().is_some()) || st.dirs.contains(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let st = self.op()?;
        st.files
            .get(path)
            .and_then(|f| f.visible())
            .map(|b| b.len() as u64)
            .ok_or_else(|| not_found(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn unsynced_write_is_lost_on_drop_all() {
        let fs = FaultyFs::new();
        fs.write_file(&p("/d/a"), b"hello").unwrap();
        assert_eq!(fs.read_file(&p("/d/a")).unwrap(), b"hello");
        fs.power_cut(TornWrite::DropAll);
        assert!(fs.read_file(&p("/d/a")).is_err());
    }

    #[test]
    fn unsynced_write_is_torn_on_torn_half() {
        let fs = FaultyFs::new();
        fs.write_file(&p("/d/a"), b"hello world!").unwrap();
        fs.power_cut(TornWrite::TornHalf);
        assert_eq!(fs.read_file(&p("/d/a")).unwrap(), b"hello ");
    }

    #[test]
    fn synced_write_survives_any_policy() {
        for policy in [TornWrite::DropAll, TornWrite::TornHalf, TornWrite::KeepAll] {
            let fs = FaultyFs::new();
            fs.write_file(&p("/d/a"), b"durable").unwrap();
            fs.sync_file(&p("/d/a")).unwrap();
            fs.power_cut(policy);
            assert_eq!(fs.read_file(&p("/d/a")).unwrap(), b"durable", "{policy:?}");
        }
    }

    #[test]
    fn rename_without_dir_sync_rolls_back() {
        let fs = FaultyFs::new();
        // Old manifest, durable.
        fs.write_file(&p("/d/m"), b"v1").unwrap();
        fs.sync_file(&p("/d/m")).unwrap();
        // New manifest written + synced + renamed, but directory never
        // synced: the rename must roll back, restoring v1.
        fs.write_file(&p("/d/m.tmp"), b"v2").unwrap();
        fs.sync_file(&p("/d/m.tmp")).unwrap();
        fs.rename(&p("/d/m.tmp"), &p("/d/m")).unwrap();
        assert_eq!(fs.read_file(&p("/d/m")).unwrap(), b"v2", "visible pre-cut");
        fs.power_cut(TornWrite::DropAll);
        assert_eq!(fs.read_file(&p("/d/m")).unwrap(), b"v1");
        // The new content survived at the tmp name (it was fsynced there).
        assert_eq!(fs.read_file(&p("/d/m.tmp")).unwrap(), b"v2");
    }

    #[test]
    fn rename_with_dir_sync_is_durable() {
        let fs = FaultyFs::new();
        fs.write_file(&p("/d/m"), b"v1").unwrap();
        fs.sync_file(&p("/d/m")).unwrap();
        fs.write_atomic(&p("/d/m"), b"v2").unwrap();
        fs.power_cut(TornWrite::DropAll);
        assert_eq!(fs.read_file(&p("/d/m")).unwrap(), b"v2");
        assert!(fs.read_file(&tmp_path(&p("/d/m"))).is_err(), "no tmp left");
    }

    #[test]
    fn crash_point_fires_once_and_sticks() {
        let fs = FaultyFs::new();
        fs.crash_after(2);
        fs.write_file(&p("/d/a"), b"1").unwrap();
        let err = fs.write_file(&p("/d/b"), b"2").unwrap_err();
        assert!(err.to_string().contains("simulated power loss"));
        assert!(fs.has_crashed());
        // Everything fails until the power cut is resolved.
        assert!(fs.read_file(&p("/d/a")).is_err());
        fs.power_cut(TornWrite::KeepAll);
        assert_eq!(fs.read_file(&p("/d/a")).unwrap(), b"1");
        assert!(
            fs.read_file(&p("/d/b")).is_err(),
            "crashed op had no effect"
        );
    }

    #[test]
    fn transient_fault_fires_once() {
        let fs = FaultyFs::new();
        fs.write_file(&p("/d/a"), b"x").unwrap();
        fs.inject_error(2, io::ErrorKind::StorageFull);
        let err = fs.write_file(&p("/d/a"), b"y").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // The failed op had no effect; the next attempt succeeds.
        assert_eq!(fs.read_file(&p("/d/a")).unwrap(), b"x");
        fs.write_file(&p("/d/a"), b"y").unwrap();
        assert_eq!(fs.read_file(&p("/d/a")).unwrap(), b"y");
    }

    #[test]
    fn list_dir_sees_only_direct_children() {
        let fs = FaultyFs::new();
        fs.create_dir_all(&p("/d/sub")).unwrap();
        fs.write_file(&p("/d/a"), b"1").unwrap();
        fs.write_file(&p("/d/b"), b"2").unwrap();
        fs.write_file(&p("/d/sub/c"), b"3").unwrap();
        assert_eq!(fs.list_dir(&p("/d")).unwrap(), vec![p("/d/a"), p("/d/b")]);
        assert!(fs.exists(&p("/d/sub")));
    }

    #[test]
    fn real_fs_write_atomic_replaces_content() {
        let dir = tempfile::tempdir().unwrap();
        let target = dir.path().join("file.bin");
        RealFs.write_atomic(&target, b"first").unwrap();
        assert_eq!(RealFs.read_file(&target).unwrap(), b"first");
        RealFs.write_atomic(&target, b"second").unwrap();
        assert_eq!(RealFs.read_file(&target).unwrap(), b"second");
        assert!(!RealFs.exists(&tmp_path(&target)), "tmp cleaned by rename");
        assert_eq!(RealFs.file_len(&target).unwrap(), 6);
        assert_eq!(RealFs.list_dir(dir.path()).unwrap(), vec![target]);
    }
}
