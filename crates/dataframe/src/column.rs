//! Typed columns.

use serde::{Deserialize, Serialize};

/// The data type of a column cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit float — the native precision of DNN activations.
    F32,
    /// 16-bit float (stored as bit patterns) — LP_QT quantized activations.
    F16,
    /// 64-bit float — TRAD pipeline features and predictions.
    F64,
    /// 64-bit signed integer — ids, counts.
    I64,
    /// 8-bit unsigned integer — quantized activations (KBIT_QT codes).
    U8,
    /// Boolean — THRESHOLD_QT binarized activations, boolean features.
    Bool,
    /// Dictionary-encoded categorical string — Zillow region/type codes.
    Cat,
}

impl DType {
    /// Bytes per value for fixed-width types; dictionary types report the
    /// per-row code width (4 bytes).
    pub fn value_width(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
            DType::F64 => 8,
            DType::I64 => 8,
            DType::U8 => 1,
            DType::Bool => 1,
            DType::Cat => 4,
        }
    }
}

/// The cells of a column (or a chunk of one).
///
/// Equality is *bitwise* for float columns (NaN == NaN, 0.0 != -0.0),
/// matching the store's content-hash semantics: two columns are equal iff
/// their canonical serialized bytes are equal.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 16-bit floats as IEEE binary16 bit patterns (LP_QT storage).
    F16(Vec<u16>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// Unsigned bytes.
    U8(Vec<u8>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dictionary-encoded categorical values: per-row codes indexing `dict`.
    Cat {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// The dictionary of distinct string values.
        dict: Vec<String>,
    },
}

impl PartialEq for ColumnData {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ColumnData::F32(a), ColumnData::F32(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (ColumnData::F16(a), ColumnData::F16(b)) => a == b,
            (ColumnData::F64(a), ColumnData::F64(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (ColumnData::I64(a), ColumnData::I64(b)) => a == b,
            (ColumnData::U8(a), ColumnData::U8(b)) => a == b,
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a == b,
            (
                ColumnData::Cat {
                    codes: ca,
                    dict: da,
                },
                ColumnData::Cat {
                    codes: cb,
                    dict: db,
                },
            ) => ca == cb && da == db,
            _ => false,
        }
    }
}

impl ColumnData {
    /// The data type of this column data.
    pub fn dtype(&self) -> DType {
        match self {
            ColumnData::F32(_) => DType::F32,
            ColumnData::F16(_) => DType::F16,
            ColumnData::F64(_) => DType::F64,
            ColumnData::I64(_) => DType::I64,
            ColumnData::U8(_) => DType::U8,
            ColumnData::Bool(_) => DType::Bool,
            ColumnData::Cat { .. } => DType::Cat,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::F32(v) => v.len(),
            ColumnData::F16(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::U8(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Cat { codes, .. } => codes.len(),
        }
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-memory footprint of the cell data in bytes (dictionary included).
    pub fn nbytes(&self) -> usize {
        match self {
            ColumnData::Cat { codes, dict } => {
                codes.len() * 4 + dict.iter().map(|s| s.len() + 4).sum::<usize>()
            }
            other => other.len() * other.dtype().value_width(),
        }
    }

    /// Slice rows `[start, end)` into a new `ColumnData`.
    pub fn slice(&self, start: usize, end: usize) -> ColumnData {
        match self {
            ColumnData::F32(v) => ColumnData::F32(v[start..end].to_vec()),
            ColumnData::F16(v) => ColumnData::F16(v[start..end].to_vec()),
            ColumnData::F64(v) => ColumnData::F64(v[start..end].to_vec()),
            ColumnData::I64(v) => ColumnData::I64(v[start..end].to_vec()),
            ColumnData::U8(v) => ColumnData::U8(v[start..end].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[start..end].to_vec()),
            ColumnData::Cat { codes, dict } => ColumnData::Cat {
                codes: codes[start..end].to_vec(),
                dict: dict.clone(),
            },
        }
    }

    /// Append another `ColumnData` of the same type (used when stitching
    /// chunks back into a column). Categorical appends remap dictionary codes.
    ///
    /// # Panics
    /// Panics if the dtypes differ.
    pub fn append(&mut self, other: &ColumnData) {
        match (self, other) {
            (ColumnData::F32(a), ColumnData::F32(b)) => a.extend_from_slice(b),
            (ColumnData::F16(a), ColumnData::F16(b)) => a.extend_from_slice(b),
            (ColumnData::F64(a), ColumnData::F64(b)) => a.extend_from_slice(b),
            (ColumnData::I64(a), ColumnData::I64(b)) => a.extend_from_slice(b),
            (ColumnData::U8(a), ColumnData::U8(b)) => a.extend_from_slice(b),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (
                ColumnData::Cat { codes, dict },
                ColumnData::Cat {
                    codes: oc,
                    dict: od,
                },
            ) => {
                // Remap other's codes into our dictionary.
                let mut remap = Vec::with_capacity(od.len());
                for s in od {
                    let idx = dict.iter().position(|d| d == s).unwrap_or_else(|| {
                        dict.push(s.clone());
                        dict.len() - 1
                    });
                    remap.push(idx as u32);
                }
                codes.extend(oc.iter().map(|&c| remap[c as usize]));
            }
            (a, b) => panic!("append dtype mismatch: {:?} vs {:?}", a.dtype(), b.dtype()),
        }
    }

    /// View the values as f64 (lossless for every numeric type; booleans map
    /// to 0/1; categorical maps to the dictionary code). This is the
    /// "returns a numpy array" surface of the paper's query API.
    pub fn to_f64(&self) -> Vec<f64> {
        match self {
            ColumnData::F32(v) => v.iter().map(|&x| x as f64).collect(),
            ColumnData::F16(v) => v
                .iter()
                .map(|&bits| mistique_quantize::f16(bits).to_f32() as f64)
                .collect(),
            ColumnData::F64(v) => v.clone(),
            ColumnData::I64(v) => v.iter().map(|&x| x as f64).collect(),
            ColumnData::U8(v) => v.iter().map(|&x| x as f64).collect(),
            ColumnData::Bool(v) => v.iter().map(|&x| if x { 1.0 } else { 0.0 }).collect(),
            ColumnData::Cat { codes, .. } => codes.iter().map(|&c| c as f64).collect(),
        }
    }

    /// Gather rows at the given indices into a new `ColumnData`.
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> ColumnData {
        match self {
            ColumnData::F32(v) => ColumnData::F32(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::F16(v) => ColumnData::F16(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::F64(v) => ColumnData::F64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::I64(v) => ColumnData::I64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::U8(v) => ColumnData::U8(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Cat { codes, dict } => ColumnData::Cat {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                dict: dict.clone(),
            },
        }
    }

    /// Build a categorical column from string values.
    pub fn cat_from_strings<S: AsRef<str>>(values: &[S]) -> ColumnData {
        let mut dict: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let s = v.as_ref();
            let idx = dict.iter().position(|d| d == s).unwrap_or_else(|| {
                dict.push(s.to_string());
                dict.len() - 1
            });
            codes.push(idx as u32);
        }
        ColumnData::Cat { codes, dict }
    }

    /// String value at `row` for categorical columns, `None` otherwise.
    pub fn cat_value(&self, row: usize) -> Option<&str> {
        match self {
            ColumnData::Cat { codes, dict } => dict.get(codes[row] as usize).map(|s| s.as_str()),
            _ => None,
        }
    }
}

/// A named, typed column of a [`crate::DataFrame`].
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    /// Column name, unique within its dataframe.
    pub name: String,
    /// The cell data.
    pub data: ColumnData,
}

impl Column {
    /// Create a column.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        Column {
            name: name.into(),
            data,
        }
    }

    /// Convenience: an f64 column.
    pub fn f64(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column::new(name, ColumnData::F64(values))
    }

    /// Convenience: an f32 column.
    pub fn f32(name: impl Into<String>, values: Vec<f32>) -> Self {
        Column::new(name, ColumnData::F32(values))
    }

    /// Convenience: an i64 column.
    pub fn i64(name: impl Into<String>, values: Vec<i64>) -> Self {
        Column::new(name, ColumnData::I64(values))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_widths() {
        assert_eq!(DType::F32.value_width(), 4);
        assert_eq!(DType::F64.value_width(), 8);
        assert_eq!(DType::U8.value_width(), 1);
        assert_eq!(DType::Bool.value_width(), 1);
    }

    #[test]
    fn slice_and_append_roundtrip() {
        let d = ColumnData::F64(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut a = d.slice(0, 2);
        let b = d.slice(2, 5);
        a.append(&b);
        assert_eq!(a, d);
    }

    #[test]
    fn cat_from_strings_dedups_dictionary() {
        let d = ColumnData::cat_from_strings(&["la", "sf", "la", "nyc", "sf"]);
        match &d {
            ColumnData::Cat { codes, dict } => {
                assert_eq!(dict.len(), 3);
                assert_eq!(codes, &[0, 1, 0, 2, 1]);
            }
            _ => panic!(),
        }
        assert_eq!(d.cat_value(3), Some("nyc"));
    }

    #[test]
    fn cat_append_remaps_codes() {
        let mut a = ColumnData::cat_from_strings(&["x", "y"]);
        let b = ColumnData::cat_from_strings(&["y", "z"]);
        a.append(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.cat_value(2), Some("y"));
        assert_eq!(a.cat_value(3), Some("z"));
    }

    #[test]
    fn to_f64_conversions() {
        assert_eq!(ColumnData::Bool(vec![true, false]).to_f64(), vec![1.0, 0.0]);
        assert_eq!(ColumnData::U8(vec![3, 7]).to_f64(), vec![3.0, 7.0]);
        assert_eq!(ColumnData::F32(vec![0.5]).to_f64(), vec![0.5]);
    }

    #[test]
    fn gather_selects_rows() {
        let d = ColumnData::I64(vec![10, 20, 30, 40]);
        assert_eq!(d.gather(&[3, 0, 0]), ColumnData::I64(vec![40, 10, 10]));
    }

    #[test]
    #[should_panic(expected = "dtype mismatch")]
    fn append_mismatched_types_panics() {
        let mut a = ColumnData::F64(vec![1.0]);
        a.append(&ColumnData::I64(vec![1]));
    }

    #[test]
    fn nbytes_accounts_for_dictionary() {
        let d = ColumnData::cat_from_strings(&["aa", "bb", "aa"]);
        // 3 codes * 4 bytes + 2 dict entries * (2 chars + 4 len) = 12 + 12
        assert_eq!(d.nbytes(), 24);
    }
}
