//! Columnar data model for MISTIQUE.
//!
//! The paper (Sec 3) represents every model intermediate — including the input
//! data and final predictions — as a *dataframe*: a logical table with named,
//! typed columns and an implicit `row_id`. Rows are grouped into **RowBlocks**
//! (1 000 rows by default in the evaluation) and the cells of one column within
//! one RowBlock form a **ColumnChunk**, the unit of storage, hashing,
//! de-duplication, and compression.
//!
//! This crate provides:
//! - [`DType`] / [`ColumnData`]: the supported cell types,
//! - [`Column`] and [`DataFrame`]: the logical view,
//! - [`ColumnChunk`]: the physical unit with canonical byte serialization,
//! - [`DataFrame::chunks`]: splitting a DataFrame into `(RowBlock, ColumnChunk)` pieces.

pub mod chunk;
pub mod column;
pub mod frame;

pub use chunk::{ChunkError, ColumnChunk};
pub use column::{Column, ColumnData, DType};
pub use frame::DataFrame;

/// Default number of rows per RowBlock, matching the paper's evaluation setup
/// ("RowBlocks in MISTIQUE were set to be 1K rows", Sec 8.1).
pub const DEFAULT_ROW_BLOCK_SIZE: usize = 1000;
