//! ColumnChunks: the physical unit of storage.
//!
//! A `ColumnChunk` is the cells of one column within one RowBlock. Chunks have
//! a canonical little-endian byte serialization used for (a) content hashing
//! in exact de-duplication, (b) MinHash signatures in approximate
//! de-duplication, and (c) compression when a Partition is written out.

use crate::column::{ColumnData, DType};

/// Errors produced while decoding a serialized chunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkError {
    /// The byte buffer was shorter than the header or payload requires.
    Truncated,
    /// The dtype tag is unknown.
    BadDType(u8),
    /// A categorical dictionary entry was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::Truncated => write!(f, "truncated chunk bytes"),
            ChunkError::BadDType(t) => write!(f, "unknown dtype tag {t}"),
            ChunkError::BadUtf8 => write!(f, "invalid UTF-8 in dictionary"),
        }
    }
}

impl std::error::Error for ChunkError {}

/// The cells of one column within one RowBlock.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnChunk {
    /// The cell data.
    pub data: ColumnData,
}

fn dtype_tag(d: DType) -> u8 {
    match d {
        DType::F32 => 0,
        DType::F16 => 6,
        DType::F64 => 1,
        DType::I64 => 2,
        DType::U8 => 3,
        DType::Bool => 4,
        DType::Cat => 5,
    }
}

impl ColumnChunk {
    /// Wrap column data as a chunk.
    pub fn new(data: ColumnData) -> Self {
        ColumnChunk { data }
    }

    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Uncompressed in-memory size in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.nbytes()
    }

    /// Canonical serialization: `[dtype: u8][n_rows: u32 LE][payload]`.
    ///
    /// Payloads are little-endian fixed-width values; categorical chunks
    /// store codes then `[dict_len: u32][(len: u32, utf8 bytes)...]`.
    /// Two chunks are *identical* for exact dedup iff these bytes match.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.data.len();
        let mut out = Vec::with_capacity(self.nbytes() + 16);
        out.push(dtype_tag(self.data.dtype()));
        out.extend_from_slice(&(n as u32).to_le_bytes());
        match &self.data {
            ColumnData::F32(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::F64(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::I64(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::F16(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::U8(v) => out.extend_from_slice(v),
            ColumnData::Bool(v) => out.extend(v.iter().map(|&b| b as u8)),
            ColumnData::Cat { codes, dict } => {
                for c in codes {
                    out.extend_from_slice(&c.to_le_bytes());
                }
                out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for s in dict {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
        out
    }

    /// Decode a chunk serialized by [`ColumnChunk::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ColumnChunk, ChunkError> {
        if bytes.len() < 5 {
            return Err(ChunkError::Truncated);
        }
        let tag = bytes[0];
        let n = u32::from_le_bytes(bytes[1..5].try_into().unwrap()) as usize;
        let body = &bytes[5..];
        let need = |w: usize| -> Result<(), ChunkError> {
            if body.len() < n * w {
                Err(ChunkError::Truncated)
            } else {
                Ok(())
            }
        };
        let data = match tag {
            0 => {
                need(4)?;
                ColumnData::F32(
                    body.chunks_exact(4)
                        .take(n)
                        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                )
            }
            1 => {
                need(8)?;
                ColumnData::F64(
                    body.chunks_exact(8)
                        .take(n)
                        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                )
            }
            2 => {
                need(8)?;
                ColumnData::I64(
                    body.chunks_exact(8)
                        .take(n)
                        .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                )
            }
            3 => {
                need(1)?;
                ColumnData::U8(body[..n].to_vec())
            }
            4 => {
                need(1)?;
                ColumnData::Bool(body[..n].iter().map(|&b| b != 0).collect())
            }
            5 => {
                need(4)?;
                let codes: Vec<u32> = body
                    .chunks_exact(4)
                    .take(n)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                let mut pos = n * 4;
                let take4 = |pos: &mut usize| -> Result<u32, ChunkError> {
                    let end = *pos + 4;
                    if end > body.len() {
                        return Err(ChunkError::Truncated);
                    }
                    let v = u32::from_le_bytes(body[*pos..end].try_into().unwrap());
                    *pos = end;
                    Ok(v)
                };
                let dict_len = take4(&mut pos)? as usize;
                if dict_len > body.len() {
                    return Err(ChunkError::Truncated);
                }
                let mut dict = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    let slen = take4(&mut pos)? as usize;
                    let end = pos + slen;
                    if end > body.len() {
                        return Err(ChunkError::Truncated);
                    }
                    let s =
                        std::str::from_utf8(&body[pos..end]).map_err(|_| ChunkError::BadUtf8)?;
                    dict.push(s.to_string());
                    pos = end;
                }
                ColumnData::Cat { codes, dict }
            }
            6 => {
                need(2)?;
                ColumnData::F16(
                    body.chunks_exact(2)
                        .take(n)
                        .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                )
            }
            t => return Err(ChunkError::BadDType(t)),
        };
        Ok(ColumnChunk { data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: ColumnData) {
        let chunk = ColumnChunk::new(data);
        let bytes = chunk.to_bytes();
        let back = ColumnChunk::from_bytes(&bytes).unwrap();
        assert_eq!(back, chunk);
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(ColumnData::F32(vec![1.5, -2.25, 0.0, f32::MAX]));
        roundtrip(ColumnData::F64(vec![1e300, -0.0, 3.125]));
        roundtrip(ColumnData::I64(vec![i64::MIN, 0, i64::MAX]));
        roundtrip(ColumnData::U8(vec![0, 255, 7]));
        roundtrip(ColumnData::Bool(vec![true, false, true]));
        roundtrip(ColumnData::cat_from_strings(&["a", "bb", "a", "ccc"]));
    }

    #[test]
    fn roundtrip_empty_chunks() {
        roundtrip(ColumnData::F64(vec![]));
        roundtrip(ColumnData::Cat {
            codes: vec![],
            dict: vec![],
        });
    }

    #[test]
    fn identical_data_has_identical_bytes() {
        let a = ColumnChunk::new(ColumnData::F64(vec![1.0, 2.0]));
        let b = ColumnChunk::new(ColumnData::F64(vec![1.0, 2.0]));
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn different_dtype_has_different_bytes() {
        let a = ColumnChunk::new(ColumnData::U8(vec![1, 2]));
        let b = ColumnChunk::new(ColumnData::Bool(vec![true, true]));
        assert_ne!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn truncated_bytes_rejected() {
        let chunk = ColumnChunk::new(ColumnData::F64(vec![1.0, 2.0, 3.0]));
        let bytes = chunk.to_bytes();
        assert_eq!(
            ColumnChunk::from_bytes(&bytes[..bytes.len() - 3]),
            Err(ChunkError::Truncated)
        );
        assert_eq!(ColumnChunk::from_bytes(&[]), Err(ChunkError::Truncated));
    }

    #[test]
    fn bad_dtype_rejected() {
        let bytes = [42u8, 0, 0, 0, 0];
        assert_eq!(
            ColumnChunk::from_bytes(&bytes),
            Err(ChunkError::BadDType(42))
        );
    }
}
