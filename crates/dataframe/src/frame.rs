//! Logical dataframes and RowBlock chunking.

use crate::chunk::ColumnChunk;
use crate::column::{Column, ColumnData};

/// A logical table: named, typed columns of equal length with an implicit
/// `row_id` (the row's position). Every model intermediate is one of these.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct DataFrame {
    columns: Vec<Column>,
    n_rows: usize,
}

impl DataFrame {
    /// Create an empty dataframe.
    pub fn new() -> Self {
        DataFrame::default()
    }

    /// Build from columns.
    ///
    /// # Panics
    /// Panics if columns have differing lengths or duplicate names.
    pub fn from_columns(columns: Vec<Column>) -> Self {
        let n_rows = columns.first().map_or(0, |c| c.len());
        for c in &columns {
            assert_eq!(c.len(), n_rows, "column {} length mismatch", c.name);
        }
        let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), columns.len(), "duplicate column names");
        DataFrame { columns, n_rows }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Add a column.
    ///
    /// # Panics
    /// Panics on length mismatch (unless the frame is empty) or name clash.
    pub fn push_column(&mut self, column: Column) {
        if self.columns.is_empty() {
            self.n_rows = column.len();
        } else {
            assert_eq!(
                column.len(),
                self.n_rows,
                "column {} length mismatch",
                column.name
            );
        }
        assert!(
            self.column(&column.name).is_none(),
            "duplicate column name {}",
            column.name
        );
        self.columns.push(column);
    }

    /// Remove a column by name, returning it if present.
    pub fn drop_column(&mut self, name: &str) -> Option<Column> {
        let idx = self.columns.iter().position(|c| c.name == name)?;
        Some(self.columns.remove(idx))
    }

    /// A new dataframe with only the named columns (in the given order).
    ///
    /// # Panics
    /// Panics if a name is missing.
    pub fn select(&self, names: &[&str]) -> DataFrame {
        let columns = names
            .iter()
            .map(|n| {
                self.column(n)
                    .unwrap_or_else(|| panic!("no column named {n}"))
                    .clone()
            })
            .collect();
        DataFrame::from_columns(columns)
    }

    /// A new dataframe with rows `[start, end)` of every column.
    pub fn slice_rows(&self, start: usize, end: usize) -> DataFrame {
        let columns = self
            .columns
            .iter()
            .map(|c| Column::new(c.name.clone(), c.data.slice(start, end)))
            .collect();
        DataFrame::from_columns(columns)
    }

    /// A new dataframe with the rows at `indices` of every column.
    pub fn gather_rows(&self, indices: &[usize]) -> DataFrame {
        let columns = self
            .columns
            .iter()
            .map(|c| Column::new(c.name.clone(), c.data.gather(indices)))
            .collect();
        DataFrame::from_columns(columns)
    }

    /// Total uncompressed cell bytes across all columns.
    pub fn nbytes(&self) -> usize {
        self.columns.iter().map(|c| c.data.nbytes()).sum()
    }

    /// Split into RowBlocks of `block_size` rows; yields
    /// `(block_index, column_name, ColumnChunk)` for every chunk.
    ///
    /// The final block may be short. This is the decomposition the DataStore
    /// uses when logging an intermediate (Alg. 4 operates per RowBlock).
    pub fn chunks(
        &self,
        block_size: usize,
    ) -> impl Iterator<Item = (usize, &str, ColumnChunk)> + '_ {
        assert!(block_size > 0, "block size must be positive");
        let n_blocks = self.n_rows.div_ceil(block_size);
        (0..n_blocks).flat_map(move |b| {
            let start = b * block_size;
            let end = (start + block_size).min(self.n_rows);
            self.columns.iter().map(move |c| {
                (
                    b,
                    c.name.as_str(),
                    ColumnChunk::new(c.data.slice(start, end)),
                )
            })
        })
    }

    /// Reassemble a dataframe from per-column chunk sequences, the inverse of
    /// [`DataFrame::chunks`] (the ChunkReader's "stitching", Sec 6).
    pub fn from_chunks(parts: Vec<(String, Vec<ColumnChunk>)>) -> DataFrame {
        let columns = parts
            .into_iter()
            .map(|(name, chunks)| {
                let mut iter = chunks.into_iter();
                let mut data = iter
                    .next()
                    .map(|c| c.data)
                    .unwrap_or(ColumnData::F64(vec![]));
                for c in iter {
                    data.append(&c.data);
                }
                Column::new(name, data)
            })
            .collect();
        DataFrame::from_columns(columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_ROW_BLOCK_SIZE;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::f64("price", (0..2500).map(|i| i as f64).collect()),
            Column::i64("rooms", (0..2500).map(|i| i % 7).collect()),
        ])
    }

    #[test]
    fn construction_and_lookup() {
        let df = sample();
        assert_eq!(df.n_rows(), 2500);
        assert_eq!(df.n_cols(), 2);
        assert!(df.column("price").is_some());
        assert!(df.column("missing").is_none());
        assert_eq!(df.column_names(), vec!["price", "rooms"]);
    }

    #[test]
    fn default_block_size_matches_paper() {
        assert_eq!(DEFAULT_ROW_BLOCK_SIZE, 1000);
    }

    #[test]
    fn chunking_produces_expected_blocks() {
        let df = sample();
        let chunks: Vec<_> = df.chunks(1000).collect();
        // 3 blocks (1000, 1000, 500) x 2 columns.
        assert_eq!(chunks.len(), 6);
        assert_eq!(chunks[0].2.len(), 1000);
        let last = &chunks[5];
        assert_eq!(last.0, 2);
        assert_eq!(last.2.len(), 500);
    }

    #[test]
    fn chunk_roundtrip_reassembles_frame() {
        let df = sample();
        let mut by_col: Vec<(String, Vec<ColumnChunk>)> = df
            .column_names()
            .iter()
            .map(|n| (n.to_string(), vec![]))
            .collect();
        for (_, name, chunk) in df.chunks(700) {
            by_col
                .iter_mut()
                .find(|(n, _)| n == name)
                .unwrap()
                .1
                .push(chunk);
        }
        let back = DataFrame::from_chunks(by_col);
        assert_eq!(back, df);
    }

    #[test]
    fn select_and_drop() {
        let mut df = sample();
        let sel = df.select(&["rooms"]);
        assert_eq!(sel.n_cols(), 1);
        assert_eq!(sel.n_rows(), 2500);
        let dropped = df.drop_column("price").unwrap();
        assert_eq!(dropped.name, "price");
        assert_eq!(df.n_cols(), 1);
        assert!(df.drop_column("price").is_none());
    }

    #[test]
    fn slice_and_gather() {
        let df = sample();
        let s = df.slice_rows(10, 13);
        assert_eq!(s.n_rows(), 3);
        assert_eq!(
            s.column("price").unwrap().data.to_f64(),
            vec![10.0, 11.0, 12.0]
        );
        let g = df.gather_rows(&[2499, 0]);
        assert_eq!(g.column("price").unwrap().data.to_f64(), vec![2499.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_column_lengths_panic() {
        DataFrame::from_columns(vec![
            Column::f64("a", vec![1.0]),
            Column::f64("b", vec![1.0, 2.0]),
        ]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_panic() {
        let mut df = DataFrame::new();
        df.push_column(Column::f64("a", vec![1.0]));
        df.push_column(Column::f64("a", vec![2.0]));
    }

    #[test]
    fn nbytes_sums_columns() {
        let df = sample();
        assert_eq!(df.nbytes(), 2500 * 8 + 2500 * 8);
    }
}
