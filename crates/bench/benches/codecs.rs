//! Criterion micro-benchmarks for the compression codecs.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mistique_compress::{compress, compress_auto, decompress, Scheme};

fn workloads() -> Vec<(&'static str, Vec<u8>)> {
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 56) as u8
    };
    let n = 256 * 1024;
    let random: Vec<u8> = (0..n).map(|_| rnd()).collect();
    let constant = vec![42u8; n];
    let text: Vec<u8> = b"intermediate activation tensors compress well "
        .iter()
        .cycle()
        .take(n)
        .copied()
        .collect();
    let sorted_ids: Vec<u8> = (0..n as u32 / 4).flat_map(|i| i.to_le_bytes()).collect();
    vec![
        ("random", random),
        ("constant", constant),
        ("text", text),
        ("sorted_ids", sorted_ids),
    ]
}

fn bench_codecs(c: &mut Criterion) {
    for (name, data) in workloads() {
        let mut group = c.benchmark_group(format!("codec/{name}"));
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.sample_size(20);
        for scheme in [Scheme::Rle, Scheme::Lzss, Scheme::Delta4, Scheme::XorF32] {
            group.bench_function(format!("compress/{scheme:?}"), |b| {
                b.iter(|| compress(black_box(&data), scheme))
            });
            let frame = compress(&data, scheme);
            group.bench_function(format!("decompress/{scheme:?}"), |b| {
                b.iter(|| decompress(black_box(&frame)).unwrap())
            });
        }
        group.bench_function("compress/auto", |b| {
            b.iter(|| compress_auto(black_box(&data)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
