//! Criterion micro-benchmarks for the DNN forward path (the re-run cost).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mistique_nn::{simple_cnn, vgg16_cifar, CifarLike, Model};

fn bench_forward(c: &mut Criterion) {
    let data = CifarLike::generate(16, 10, 1);
    let mut group = c.benchmark_group("nn_forward");
    group.sample_size(10);
    group.throughput(Throughput::Elements(16));

    for (name, arch) in [
        ("simple_cnn/16", simple_cnn(16)),
        ("vgg16/16", vgg16_cifar(16)),
    ] {
        let model = Model::build(&arch, 1, 0);
        let last = model.n_layers() - 1;
        group.bench_function(format!("{name}/full"), |b| {
            b.iter(|| model.forward_to_batched(black_box(&data.images), last, 16))
        });
        group.bench_function(format!("{name}/layer1"), |b| {
            b.iter(|| model.forward_to_batched(black_box(&data.images), 0, 16))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
