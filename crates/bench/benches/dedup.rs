//! Criterion micro-benchmarks for hashing, MinHash, and LSH (Sec 4.2).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mistique_dedup::{content_digest, discretize, xxhash64, LshIndex, MinHasher};

fn bench_dedup(c: &mut Criterion) {
    let data: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();

    let mut group = c.benchmark_group("dedup");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(20);
    group.bench_function("xxhash64/1MiB", |b| {
        b.iter(|| xxhash64(black_box(&data), 0))
    });
    group.bench_function("content_digest/1MiB", |b| {
        b.iter(|| content_digest(black_box(&data)))
    });
    group.finish();

    let values: Vec<f64> = (0..10_000).map(|i| (i as f64) * 0.37).collect();
    let elements = discretize(&values, 0.05);
    let hasher = MinHasher::new(128);

    let mut group = c.benchmark_group("minhash");
    group.sample_size(20);
    group.bench_function("discretize/10k", |b| {
        b.iter(|| discretize(black_box(&values), 0.05))
    });
    group.bench_function("signature/128x10k", |b| {
        b.iter(|| hasher.signature(black_box(&elements)))
    });
    group.finish();

    // LSH index with 1000 resident signatures.
    let mut idx = LshIndex::new(32, 4);
    for i in 0..1000u64 {
        let set: Vec<u64> = (i * 13..i * 13 + 500).collect();
        idx.insert(i, hasher.signature(&set));
    }
    let probe = hasher.signature(&(380u64 * 13..380 * 13 + 500).collect::<Vec<_>>());
    let mut group = c.benchmark_group("lsh");
    group.sample_size(20);
    group.bench_function("query_best/1000_items", |b| {
        b.iter(|| idx.query_best(black_box(&probe), 0.5))
    });
    group.finish();
}

criterion_group!(benches, bench_dedup);
criterion_main!(benches);
