//! Criterion micro-benchmarks for the DataStore write and read paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mistique_dataframe::{ColumnChunk, ColumnData};
use mistique_store::{ChunkKey, DataStore, DataStoreConfig, PlacementPolicy};

fn chunk(seed: u64, rows: usize) -> ColumnChunk {
    let mut state = seed;
    let values: Vec<f64> = (0..rows)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 100.0
        })
        .collect();
    ColumnChunk::new(ColumnData::F64(values))
}

fn bench_store(c: &mut Criterion) {
    let rows = 1000;
    let bytes = (rows * 8) as u64;

    let mut group = c.benchmark_group("store");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(20);

    for (name, policy) in [
        ("by_intermediate", PlacementPolicy::ByIntermediate),
        ("by_similarity", PlacementPolicy::BySimilarity { tau: 0.6 }),
    ] {
        group.bench_function(format!("put_chunk/{name}"), |b| {
            let dir = tempfile::tempdir().unwrap();
            let mut store = DataStore::open(
                dir.path(),
                DataStoreConfig {
                    policy,
                    ..DataStoreConfig::default()
                },
            )
            .unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let ch = chunk(i, rows);
                store
                    .put_chunk(ChunkKey::new("m.i", format!("c{i}"), 0), black_box(&ch))
                    .unwrap()
            });
        });
    }

    // Warm read from the buffer pool.
    group.bench_function("get_chunk/warm", |b| {
        let dir = tempfile::tempdir().unwrap();
        let mut store = DataStore::open(dir.path(), DataStoreConfig::default()).unwrap();
        let ch = chunk(1, rows);
        let key = ChunkKey::new("m.i", "c", 0);
        store.put_chunk(key.clone(), &ch).unwrap();
        b.iter(|| store.get_chunk(black_box(&key)).unwrap());
    });

    // Cold read: flushed to disk, cache cleared each iteration.
    group.bench_function("get_chunk/cold_disk", |b| {
        let dir = tempfile::tempdir().unwrap();
        let mut store = DataStore::open(dir.path(), DataStoreConfig::default()).unwrap();
        let ch = chunk(1, rows);
        let key = ChunkKey::new("m.i", "c", 0);
        store.put_chunk(key.clone(), &ch).unwrap();
        store.flush().unwrap();
        b.iter(|| {
            store.clear_read_cache();
            store.get_chunk(black_box(&key)).unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
