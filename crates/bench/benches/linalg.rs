//! Criterion micro-benchmarks for the linear-algebra substrate (SVD/CCA/SVCCA).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mistique_linalg::{cca, svcca, thin_svd, Matrix};

fn noise(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed;
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    group.sample_size(10);

    for cols in [16usize, 64] {
        let a = noise(512, cols, 1);
        group.bench_function(format!("thin_svd/512x{cols}"), |b| {
            b.iter(|| thin_svd(black_box(&a)))
        });
    }

    let x = noise(512, 32, 2);
    let y = noise(512, 32, 3);
    group.bench_function("cca/512x32", |b| {
        b.iter(|| cca(black_box(&x), black_box(&y)))
    });
    group.bench_function("svcca/512x32", |b| {
        b.iter(|| svcca(black_box(&x), black_box(&y), 0.99))
    });

    let m1 = noise(256, 256, 4);
    let m2 = noise(256, 256, 5);
    group.bench_function("matmul/256x256", |b| {
        b.iter(|| black_box(&m1).matmul(black_box(&m2)))
    });
    group.finish();
}

criterion_group!(benches, bench_linalg);
criterion_main!(benches);
