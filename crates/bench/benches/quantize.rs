//! Criterion micro-benchmarks for the quantization schemes (Sec 4.1).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mistique_quantize::half::{decode_f16, encode_f16};
use mistique_quantize::{avg_pool2d, KbitQuantizer, ThresholdQuantizer};

fn sample(n: usize) -> Vec<f32> {
    let mut state = 7u64;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 10.0
        })
        .collect()
}

fn bench_quantize(c: &mut Criterion) {
    let values = sample(1 << 18);
    let bytes = (values.len() * 4) as u64;

    let mut group = c.benchmark_group("quantize");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(20);

    group.bench_function("lp/encode_f16", |b| {
        b.iter(|| encode_f16(black_box(&values)))
    });
    let encoded = encode_f16(&values);
    group.bench_function("lp/decode_f16", |b| {
        b.iter(|| decode_f16(black_box(&encoded)).unwrap())
    });

    group.bench_function("kbit8/fit", |b| {
        b.iter(|| KbitQuantizer::fit(black_box(&values[..(1 << 14)]), 8))
    });
    let q = KbitQuantizer::fit(&values, 8);
    group.bench_function("kbit8/encode", |b| b.iter(|| q.encode(black_box(&values))));
    let packed = q.encode(&values);
    group.bench_function("kbit8/decode_reconstruct", |b| {
        b.iter(|| q.decode(black_box(&packed), values.len()).unwrap())
    });

    let t = ThresholdQuantizer::fit(&values[..(1 << 14)], 0.995);
    group.bench_function("threshold/encode_packed", |b| {
        b.iter(|| t.encode_packed(black_box(&values)))
    });

    // Pool a 64x64 map per iteration (per-example POOL_QT cost).
    let map = sample(64 * 64);
    group.bench_function("pool/avg_sigma2_64x64", |b| {
        b.iter(|| avg_pool2d(black_box(&map), 64, 64, 2))
    });
    group.bench_function("pool/avg_sigma32_64x64", |b| {
        b.iter(|| avg_pool2d(black_box(&map), 64, 64, 32))
    });
    group.finish();
}

criterion_group!(benches, bench_quantize);
criterion_main!(benches);
