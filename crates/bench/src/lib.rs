//! Shared harness for the MISTIQUE reproduction benchmarks.
//!
//! One binary per table/figure of the paper's evaluation lives in
//! `src/bin/`; each prints the same rows/series the paper reports, scaled to
//! laptop budgets (`--rows`, `--examples`, … flags override the defaults).
//! Criterion micro-benchmarks for the substrates live in `benches/`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mistique_core::{CaptureScheme, Mistique, MistiqueConfig, StorageStrategy};
use mistique_nn::{ArchConfig, CifarLike};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

/// Minimal `--flag value` argument parser (no external deps).
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse the process arguments.
    pub fn parse() -> Args {
        let mut flags = HashMap::new();
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter.next().unwrap_or_else(|| "true".to_string());
                flags.insert(name.to_string(), value);
            }
        }
        Args { flags }
    }

    /// A usize flag with a default.
    pub fn usize(&self, name: &str, default: usize) -> usize {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// An f64 flag with a default.
    pub fn f64(&self, name: &str, default: f64) -> f64 {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A string flag with a default.
    pub fn string(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A boolean flag (present = true).
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

/// Time a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Format a byte count with binary units.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

/// Format a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Print an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Build a MISTIQUE instance with the first `n_pipelines` Zillow pipelines
/// registered and logged over `rows` synthetic properties.
pub fn zillow_system(
    dir: &std::path::Path,
    rows: usize,
    n_pipelines: usize,
    storage: StorageStrategy,
) -> (Mistique, Vec<String>, Arc<ZillowData>) {
    let data = Arc::new(ZillowData::generate(rows, 42));
    let config = MistiqueConfig {
        storage,
        ..MistiqueConfig::default()
    };
    let mut sys = Mistique::open(dir, config).expect("open mistique");
    let mut ids = Vec::new();
    for p in zillow_pipelines().into_iter().take(n_pipelines) {
        let id = sys.register_trad(p, Arc::clone(&data)).expect("register");
        sys.log_intermediates(&id).expect("log");
        ids.push(id);
    }
    sys.flush().expect("flush");
    (sys, ids, data)
}

/// Build a MISTIQUE instance with `epochs` checkpoints of a DNN architecture
/// logged over `examples` synthetic images under `capture`.
pub fn dnn_system(
    dir: &std::path::Path,
    arch: ArchConfig,
    examples: usize,
    epochs: u32,
    capture: CaptureScheme,
    storage: StorageStrategy,
) -> (Mistique, Vec<String>, Arc<CifarLike>) {
    let data = Arc::new(CifarLike::generate(examples, 10, 7));
    let config = MistiqueConfig {
        storage,
        dnn_capture: capture,
        row_block_size: 1000.min(examples.max(1)),
        ..MistiqueConfig::default()
    };
    let mut sys = Mistique::open(dir, config).expect("open mistique");
    let arch = Arc::new(arch);
    let mut ids = Vec::new();
    for epoch in 0..epochs {
        let id = sys
            .register_dnn(Arc::clone(&arch), 11, epoch, Arc::clone(&data), 1000)
            .expect("register");
        sys.log_intermediates(&id).expect("log");
        ids.push(id);
    }
    sys.flush().expect("flush");
    (sys, ids, data)
}

/// Write an observability snapshot to `BENCH_<name>.json` — in the directory
/// named by `MISTIQUE_BENCH_DIR` when set, else the working directory — so
/// benchmark runs leave a machine-readable perf record next to their stdout
/// tables. Returns the path written.
pub fn write_obs_snapshot(name: &str, obs: &mistique_core::Obs) -> std::path::PathBuf {
    let dir = std::env::var("MISTIQUE_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    write_obs_snapshot_to(std::path::Path::new(&dir), name, obs)
}

/// [`write_obs_snapshot`] with an explicit target directory.
pub fn write_obs_snapshot_to(
    dir: &std::path::Path,
    name: &str,
    obs: &mistique_core::Obs,
) -> std::path::PathBuf {
    // Fingerprint the host so perf comparisons (scripts/bench_gate.sh) can
    // refuse to gate against a baseline captured on different hardware.
    obs.gauge("host.cpus").set_u64(
        std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
    );
    // And the engine configuration: systems stamp `config.fingerprint` at
    // open; substrate-only benches that never open one ran under default
    // knobs. bench_gate.sh refuses to compare snapshots whose fingerprints
    // differ.
    if !obs.snapshot().gauges.contains_key("config.fingerprint") {
        obs.gauge("config.fingerprint")
            .set_u64(MistiqueConfig::default().fingerprint_hash());
    }
    let path = dir.join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, obs.snapshot().to_json_string()) {
        Ok(()) => println!("\nwrote perf snapshot to {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    path
}

/// Default channel scale for VGG16 experiments (keeps the geometry, divides
/// the widths; see DESIGN.md Sec 5).
pub const DEFAULT_VGG_SCALE: usize = 8;
/// Default DNN example count.
pub const DEFAULT_DNN_EXAMPLES: usize = 256;
/// Default Zillow property count.
pub const DEFAULT_ZILLOW_ROWS: usize = 4000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert!(fmt_dur(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_dur(Duration::from_secs(2)).contains("s"));
    }

    #[test]
    fn zillow_system_builds() {
        let dir = tempfile::tempdir().unwrap();
        let (sys, ids, _) = zillow_system(dir.path(), 120, 2, StorageStrategy::Dedup);
        assert_eq!(ids.len(), 2);
        assert!(sys.store().stats().chunks_stored > 0);
    }

    #[test]
    fn obs_snapshot_file_is_written() {
        let dir = tempfile::tempdir().unwrap();
        let obs = mistique_core::Obs::new();
        obs.counter("bench.test").add(7);
        let path = write_obs_snapshot_to(dir.path(), "unit", &obs);
        assert_eq!(path.file_name().unwrap(), "BENCH_unit.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench.test\":7"));
        assert!(
            body.contains("\"host.cpus\":"),
            "every snapshot carries the host fingerprint"
        );
        assert!(
            body.contains("\"config.fingerprint\":"),
            "every snapshot carries the config fingerprint"
        );
    }

    #[test]
    fn dnn_system_builds() {
        let dir = tempfile::tempdir().unwrap();
        let (sys, ids, _) = dnn_system(
            dir.path(),
            mistique_nn::simple_cnn(16),
            12,
            2,
            CaptureScheme::pool2(),
            StorageStrategy::Dedup,
        );
        assert_eq!(ids.len(), 2);
        assert_eq!(sys.intermediates_of(&ids[0]).len(), 9);
    }
}
