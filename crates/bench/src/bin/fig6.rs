//! Figure 6: storage cost of intermediates.
//!
//! - `--part a` : Zillow, 50 pipelines — raw input vs STORE_ALL vs DEDUP,
//!   plus the cumulative-growth series (paper: 168 MB raw, 67 GB STORE_ALL,
//!   611 MB DEDUP = 110×; DEDUP's cumulative curve stays near-flat).
//! - `--part b` : CIFAR10_CNN and CIFAR10_VGG16, 10 checkpoints each —
//!   STORE_ALL vs LP_QT vs 8BIT_QT vs POOL(2) vs POOL(32) vs POOL(2)+DEDUP
//!   (paper: ~6× from POOL(2), ~95×/83× from POOL(32), 60× from POOL(2)+DEDUP
//!   on the fine-tuned VGG16 whose conv stack is frozen).
//!
//! Flags: `--rows N --pipelines N --examples N --epochs N --scale N --part a|b|all`

use std::sync::Arc;

use mistique_bench::*;
use mistique_core::{CaptureScheme, Mistique, MistiqueConfig, StorageStrategy, ValueScheme};
use mistique_nn::{simple_cnn, vgg16_cifar, ArchConfig};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn raw_input_bytes(data: &ZillowData) -> u64 {
    // Compressed size of the three source tables (the paper reports the raw
    // dataset compressed).
    let mut total = 0u64;
    for frame in [&data.properties, &data.train, &data.test] {
        for (_, _, chunk) in frame.chunks(mistique_dataframe::DEFAULT_ROW_BLOCK_SIZE) {
            total += mistique_compress::compress_auto(&chunk.to_bytes()).len() as u64;
        }
    }
    total
}

fn part_a(rows: usize, n_pipelines: usize) {
    println!("\n== Fig 6a: Zillow storage, {n_pipelines} pipelines over {rows} properties ==");
    let data = ZillowData::generate(rows, 42);
    let raw = raw_input_bytes(&data);

    let run = |storage: StorageStrategy| -> (u64, Vec<u64>) {
        let dir = tempfile::tempdir().unwrap();
        let data = Arc::new(ZillowData::generate(rows, 42));
        let mut sys = Mistique::open(
            dir.path(),
            MistiqueConfig {
                storage,
                ..MistiqueConfig::default()
            },
        )
        .unwrap();
        let mut cumulative = Vec::new();
        for p in zillow_pipelines().into_iter().take(n_pipelines) {
            let id = sys.register_trad(p, Arc::clone(&data)).unwrap();
            sys.log_intermediates(&id).unwrap();
            sys.flush().unwrap();
            cumulative.push(sys.store().disk_bytes().unwrap());
        }
        (sys.store().disk_bytes().unwrap(), cumulative)
    };

    let (all_bytes, all_curve) = run(StorageStrategy::StoreAll);
    let (dedup_bytes, dedup_curve) = run(StorageStrategy::Dedup);

    print_table(
        &[
            "strategy",
            "compressed bytes",
            "vs raw input",
            "vs STORE_ALL",
        ],
        &[
            vec![
                "raw input".into(),
                fmt_bytes(raw),
                "1.0x".into(),
                "-".into(),
            ],
            vec![
                "STORE_ALL".into(),
                fmt_bytes(all_bytes),
                format!("{:.1}x", all_bytes as f64 / raw as f64),
                "1.0x".into(),
            ],
            vec![
                "DEDUP".into(),
                fmt_bytes(dedup_bytes),
                format!("{:.1}x", dedup_bytes as f64 / raw as f64),
                format!("{:.1}x smaller", all_bytes as f64 / dedup_bytes as f64),
            ],
        ],
    );

    println!("\n  cumulative storage as pipelines are added (right panel of Fig 6a):");
    let rows_out: Vec<Vec<String>> = all_curve
        .iter()
        .zip(&dedup_curve)
        .enumerate()
        .filter(|(i, _)| (i + 1) % (n_pipelines / 10).max(1) == 0 || *i == 0)
        .map(|(i, (a, d))| vec![format!("{}", i + 1), fmt_bytes(*a), fmt_bytes(*d)])
        .collect();
    print_table(&["pipelines", "STORE_ALL", "DEDUP"], &rows_out);
}

fn dnn_storage(
    arch: ArchConfig,
    examples: usize,
    epochs: u32,
    capture: CaptureScheme,
    storage: StorageStrategy,
) -> u64 {
    let dir = tempfile::tempdir().unwrap();
    let (sys, _, _) = dnn_system(dir.path(), arch, examples, epochs, capture, storage);
    sys.store().disk_bytes().unwrap()
}

fn part_b(examples: usize, epochs: u32, scale: usize) {
    for (name, arch_fn) in [
        ("CIFAR10_CNN", simple_cnn as fn(usize) -> ArchConfig),
        ("CIFAR10_VGG16", vgg16_cifar as fn(usize) -> ArchConfig),
    ] {
        println!(
            "\n== Fig 6b: {name} storage, {epochs} checkpoints x {examples} examples (scale 1/{scale}) =="
        );
        let schemes: Vec<(&str, CaptureScheme, StorageStrategy)> = vec![
            (
                "STORE_ALL (f32)",
                CaptureScheme {
                    value: ValueScheme::Full,
                    pool_sigma: None,
                },
                StorageStrategy::StoreAll,
            ),
            (
                "LP_QT (f16)",
                CaptureScheme {
                    value: ValueScheme::Lp,
                    pool_sigma: None,
                },
                StorageStrategy::StoreAll,
            ),
            (
                "8BIT_QT",
                CaptureScheme {
                    value: ValueScheme::Kbit { bits: 8 },
                    pool_sigma: None,
                },
                StorageStrategy::StoreAll,
            ),
            (
                "POOL_QT(2)",
                CaptureScheme {
                    value: ValueScheme::Full,
                    pool_sigma: Some(2),
                },
                StorageStrategy::StoreAll,
            ),
            (
                "POOL_QT(32)",
                CaptureScheme {
                    value: ValueScheme::Full,
                    pool_sigma: Some(32),
                },
                StorageStrategy::StoreAll,
            ),
            (
                "POOL_QT(2)+DEDUP",
                CaptureScheme::pool2(),
                StorageStrategy::Dedup,
            ),
        ];
        let mut results = Vec::new();
        let mut baseline = 0u64;
        for (label, capture, storage) in schemes {
            let bytes = dnn_storage(arch_fn(scale), examples, epochs, capture, storage);
            if label.starts_with("STORE_ALL") {
                baseline = bytes;
            }
            results.push(vec![
                label.to_string(),
                fmt_bytes(bytes),
                if baseline > 0 {
                    format!("{:.1}x", baseline as f64 / bytes.max(1) as f64)
                } else {
                    "-".into()
                },
            ]);
        }
        print_table(
            &["scheme", "compressed bytes", "reduction vs STORE_ALL"],
            &results,
        );
    }
}

fn main() {
    let args = Args::parse();
    let part = args.string("part", "all");
    let rows = args.usize("rows", DEFAULT_ZILLOW_ROWS);
    let n_pipelines = args.usize("pipelines", 50);
    let examples = args.usize("examples", DEFAULT_DNN_EXAMPLES);
    let epochs = args.usize("epochs", 10) as u32;
    let scale = args.usize("scale", DEFAULT_VGG_SCALE);

    println!("# Figure 6: intermediate storage cost");
    println!(
        "# paper: Zillow DEDUP 110x smaller than STORE_ALL; DNN POOL(2) ~6x, POOL(32) 83-95x,"
    );
    println!("#        POOL(2)+DEDUP 60x for the frozen-conv fine-tuned VGG16");
    match part.as_str() {
        "a" => part_a(rows, n_pipelines),
        "b" => part_b(examples, epochs, scale),
        _ => {
            part_a(rows, n_pipelines);
            part_b(examples, epochs, scale);
        }
    }
}
