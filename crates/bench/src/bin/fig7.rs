//! Figure 7: verifying the cost model's two components on CIFAR10_VGG16.
//!
//! - (a) time to re-run the model to each layer: grows with layer depth,
//!   plus a fixed model-load cost (paper: 1.2 s).
//! - (b) time to read each layer's stored intermediate under the different
//!   quantization schemes: the paper finds 8BIT_QT slowest (reconstruction),
//!   then LP_QT, then pool(2), then pool(32).
//!
//! Flags: `--examples N --scale N --layers "1,6,11,16,21"`

use mistique_bench::*;
use mistique_core::{CaptureScheme, FetchStrategy, StorageStrategy, ValueScheme};
use mistique_nn::vgg16_cifar;

fn parse_layers(spec: &str, n_layers: usize) -> Vec<usize> {
    spec.split(',')
        .filter_map(|s| s.trim().parse::<usize>().ok())
        .filter(|&l| l >= 1 && l <= n_layers)
        .collect()
}

fn main() {
    let args = Args::parse();
    let examples = args.usize("examples", DEFAULT_DNN_EXAMPLES);
    let scale = args.usize("scale", DEFAULT_VGG_SCALE);

    println!("# Figure 7: cost model components on CIFAR10_VGG16");
    println!("# paper: (a) re-run time grows with layer + fixed load cost;");
    println!("#        (b) read time: 8BIT_QT > LP_QT > pool(2) > pool(32)");

    // --- (a) re-run time per layer, from a pool(2) system's measurements.
    let dir = tempfile::tempdir().unwrap();
    let (mut sys, ids, _) = dnn_system(
        dir.path(),
        vgg16_cifar(scale),
        examples,
        1,
        CaptureScheme::pool2(),
        StorageStrategy::Dedup,
    );
    let model = ids[0].clone();
    let n_layers = sys.intermediates_of(&model).len();
    let layers = parse_layers(&args.string("layers", "1,6,11,16,21"), n_layers);

    println!("\n== Fig 7a: time to re-run to layer L ({examples} examples) ==");
    let load = sys.metadata().model(&model).unwrap().model_load;
    println!("  model load (fixed cost): {}", fmt_dur(load));
    let mut rows = Vec::new();
    for &l in &layers {
        let interm = format!("{model}.layer{l}");
        let (_, t) = time(|| {
            sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Rerun)
                .unwrap()
        });
        let meta = sys.metadata().intermediate(&interm).unwrap();
        rows.push(vec![
            format!("layer{l}"),
            fmt_dur(t),
            fmt_dur(meta.cum_exec_time),
        ]);
    }
    print_table(
        &["layer", "measured re-run", "logged cumulative fwd"],
        &rows,
    );

    // --- (b) read time per layer per scheme.
    println!("\n== Fig 7b: time to read layer L under each scheme ==");
    let schemes: Vec<(&str, CaptureScheme)> = vec![
        (
            "8BIT_QT",
            CaptureScheme {
                value: ValueScheme::Kbit { bits: 8 },
                pool_sigma: None,
            },
        ),
        (
            "LP_QT",
            CaptureScheme {
                value: ValueScheme::Lp,
                pool_sigma: None,
            },
        ),
        ("pool(2)", CaptureScheme::pool2()),
        (
            "pool(32)",
            CaptureScheme {
                value: ValueScheme::Full,
                pool_sigma: Some(32),
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, capture) in schemes {
        let dir = tempfile::tempdir().unwrap();
        let (mut sys, ids, _) = dnn_system(
            dir.path(),
            vgg16_cifar(scale),
            examples,
            1,
            capture,
            StorageStrategy::StoreAll,
        );
        let model = ids[0].clone();
        let mut cells = vec![name.to_string()];
        for &l in &layers {
            let interm = format!("{model}.layer{l}");
            sys.store_mut().clear_read_cache();
            let (_, t) = time(|| {
                sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
                    .unwrap()
            });
            cells.push(fmt_dur(t));
        }
        rows.push(cells);
    }
    let mut headers: Vec<String> = vec!["scheme".into()];
    headers.extend(layers.iter().map(|l| format!("layer{l}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&header_refs, &rows);
}
