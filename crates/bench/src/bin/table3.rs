//! Table 3 (Appendix C.1): effect of quantization on KNN accuracy.
//!
//! For layers {11, 16, 19} of CIFAR10_VGG16, compute the k nearest
//! neighbours of query images on full-precision representations, then on
//! 8BIT_QT and pool(2) representations, and report the fraction of overlap.
//! Paper: 8BIT_QT ≈ 0.94–1.0, pool(2) ≈ 0.74–1.0, improving with depth.
//!
//! Flags: `--examples N --scale N --k N --queries N --layers "11,16,19"`

use mistique_bench::*;
use mistique_core::diagnostics::frame_to_matrix;
use mistique_core::{CaptureScheme, FetchStrategy, StorageStrategy, ValueScheme};
use mistique_linalg::Matrix;
use mistique_nn::vgg16_cifar;
use mistique_quantize::{avg_pool2d, KbitQuantizer};

fn knn(m: &Matrix, query: usize, k: usize) -> Vec<usize> {
    let mut d: Vec<(usize, f64)> = (0..m.rows())
        .filter(|&i| i != query)
        .map(|i| {
            let dist: f64 = m
                .row(i)
                .iter()
                .zip(m.row(query))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            (i, dist)
        })
        .collect();
    d.sort_by(|a, b| a.1.total_cmp(&b.1));
    d.truncate(k);
    d.into_iter().map(|(i, _)| i).collect()
}

fn overlap(a: &[usize], b: &[usize]) -> f64 {
    let hits = a.iter().filter(|x| b.contains(x)).count();
    hits as f64 / a.len().max(1) as f64
}

fn main() {
    let args = Args::parse();
    let examples = args.usize("examples", DEFAULT_DNN_EXAMPLES);
    let scale = args.usize("scale", DEFAULT_VGG_SCALE);
    let k = args.usize("k", 50.min(examples / 4));
    let n_queries = args.usize("queries", 10);

    println!("# Table 3: KNN overlap with full-precision neighbours (k = {k})");
    println!("# paper: 8BIT_QT 0.94-1.0; POOL_QT(2) 0.74-1.0, both improving with depth");

    let dir = tempfile::tempdir().unwrap();
    let (mut sys, ids, _) = dnn_system(
        dir.path(),
        vgg16_cifar(scale),
        examples,
        1,
        CaptureScheme {
            value: ValueScheme::Full,
            pool_sigma: None,
        },
        StorageStrategy::Dedup,
    );
    let model = ids[0].clone();
    let n_layers = sys.intermediates_of(&model).len();
    let layers: Vec<usize> = args
        .string("layers", "11,16,19")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&l| l >= 1 && l <= n_layers)
        .collect();

    let mut rows = Vec::new();
    for &l in &layers {
        let interm = format!("{model}.layer{l}");
        let shape = sys.metadata().intermediate(&interm).unwrap().shape.unwrap();
        let full = frame_to_matrix(
            &sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
                .unwrap()
                .frame,
        );

        // 8BIT_QT reconstruction.
        let all: Vec<f32> = full.data().iter().map(|&v| v as f32).collect();
        let q = KbitQuantizer::fit(&all, 8);
        let eight = Matrix::from_vec(
            full.rows(),
            full.cols(),
            full.data()
                .iter()
                .map(|&v| q.value_of(q.code_of(v as f32)) as f64)
                .collect(),
        );

        // pool(2) summarization.
        let (c, h, w) = shape;
        let pooled = if h > 1 {
            let oh = h.div_ceil(2);
            let ow = w.div_ceil(2);
            let mut m = Matrix::zeros(full.rows(), c * oh * ow);
            for i in 0..full.rows() {
                let row: Vec<f32> = full.row(i).iter().map(|&v| v as f32).collect();
                let mut off = 0;
                for ch in 0..c {
                    let p = avg_pool2d(&row[ch * h * w..(ch + 1) * h * w], h, w, 2);
                    for (j, v) in p.iter().enumerate() {
                        m[(i, off + j)] = *v as f64;
                    }
                    off += oh * ow;
                }
            }
            m
        } else {
            full.clone()
        };

        let mut acc8 = 0.0;
        let mut accp = 0.0;
        for qi in 0..n_queries {
            let truth = knn(&full, qi, k);
            acc8 += overlap(&knn(&eight, qi, k), &truth);
            accp += overlap(&knn(&pooled, qi, k), &truth);
        }
        rows.push(vec![
            format!("layer{l}"),
            "1.00".into(),
            format!("{:.2}", acc8 / n_queries as f64),
            format!("{:.2}", accp / n_queries as f64),
        ]);
    }
    print_table(&["layer", "full precision", "8BIT_QT", "POOL_QT(2)"], &rows);
}
