//! Storage-reclamation throughput: build a store well past a byte budget,
//! then time one `reclaim_to` pass — the γ-ranked demotion ladder walk plus
//! the partition compaction it triggers. Reports bytes reclaimed per
//! second, the ladder composition (demotions vs purges), and the compactor
//! share of the pass.
//!
//! Flags: `--rows N --pipelines N --budget-frac F --reps N`

use std::sync::Arc;

use mistique_bench::*;
use mistique_core::{Mistique, MistiqueConfig, StorageStrategy};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn main() {
    let args = Args::parse();
    let rows = args.usize("rows", 10_000);
    let n_pipelines = args.usize("pipelines", 3);
    let budget_frac = args.f64("budget-frac", 0.25);
    let reps = args.usize("reps", 3);

    println!(
        "# Reclaim throughput: {n_pipelines} pipelines x {rows} rows, \
         budget = {budget_frac} of usage"
    );

    let mut best_ms = f64::MAX;
    let mut last = None;
    for _ in 0..reps {
        // Fresh store per rep: a reclaim pass mutates the store, so
        // repetitions must not see each other's demotions.
        let dir = tempfile::tempdir().unwrap();
        let mut sys = Mistique::open(
            dir.path(),
            MistiqueConfig {
                storage: StorageStrategy::Dedup,
                ..MistiqueConfig::default()
            },
        )
        .unwrap();
        let data = Arc::new(ZillowData::generate(rows, 1));
        for p in zillow_pipelines().into_iter().take(n_pipelines) {
            let id = sys.register_trad(p, Arc::clone(&data)).unwrap();
            sys.log_intermediates(&id).unwrap();
        }
        let used = sys.storage_budget_used();
        let budget = (used as f64 * budget_frac) as u64;

        let (report, t) = time(|| sys.reclaim_to(budget).unwrap());
        assert!(report.within_budget(), "reclaim left the store over budget");
        best_ms = best_ms.min(t.as_secs_f64() * 1e3);
        last = Some((sys, report, used, budget));
    }
    let (sys, report, used, budget) = last.unwrap();

    let reclaimed = report.used_before - report.used_after;
    let purges = report.purged.len();
    let demotions = report.demotions.len() - purges;
    let (compacted_bytes, rewritten) = report
        .compaction
        .as_ref()
        .map(|c| {
            (
                c.bytes_reclaimed,
                c.partitions_rewritten + c.partitions_removed,
            )
        })
        .unwrap_or((0, 0));
    let throughput = reclaimed as f64 / (best_ms / 1e3).max(1e-9);

    print_table(
        &["metric", "value"],
        &[
            vec!["bytes before".into(), fmt_bytes(used)],
            vec!["budget".into(), fmt_bytes(budget)],
            vec!["bytes after".into(), fmt_bytes(report.used_after)],
            vec!["ladder demotions".into(), demotions.to_string()],
            vec!["purges".into(), purges.to_string()],
            vec!["partitions compacted".into(), rewritten.to_string()],
            vec!["compactor bytes".into(), fmt_bytes(compacted_bytes)],
            vec![
                "pass time (best of reps)".into(),
                format!("{best_ms:.2} ms"),
            ],
            vec![
                "reclaim throughput".into(),
                format!("{}/s", fmt_bytes(throughput as u64)),
            ],
        ],
    );
    println!();
    print!("{}", report.render());

    let obs = sys.obs().clone();
    obs.gauge("bench.reclaim.rows").set_u64(rows as u64);
    obs.gauge("bench.reclaim.bytes_before").set_u64(used);
    obs.gauge("bench.reclaim.bytes_after")
        .set_u64(report.used_after);
    obs.gauge("bench.reclaim.demotions")
        .set_u64(demotions as u64);
    obs.gauge("bench.reclaim.purges").set_u64(purges as u64);
    obs.gauge("bench.reclaim.pass_ms").set(best_ms);
    obs.gauge("bench.reclaim.bytes_per_sec").set(throughput);
    write_obs_snapshot("reclaim", &obs);
}
