//! Decode-kernel microbench: per-codec decode throughput for the byte codecs
//! (LZSS, RLE, XOR-float, varint) and the dequantizers (f16, KBIT,
//! THRESHOLD), plus a speedup comparison of the LZSS and f16 hot loops
//! against the pre-optimization "seed" kernels, which are embedded here
//! byte-for-byte so the ratio stays measurable after the originals are gone.
//!
//! Zero external deps; writes `BENCH_decode_kernels.json` via the shared
//! snapshot helper so CI can archive the numbers next to `metrics.prom`.
//!
//! Flags: `--mib N --reps N`

use std::time::{Duration, Instant};

use mistique_bench::*;
use mistique_compress::{lzss, rle, varint, xorf};
use mistique_quantize::{half, threshold::ThresholdQuantizer, KbitQuantizer};

/// Best-of-`reps` wall time of `f`, with the result of the last run returned
/// so the optimizer cannot discard the work.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed());
        out = Some(v);
    }
    (out.unwrap(), best)
}

fn gbps(raw_bytes: usize, t: Duration) -> f64 {
    raw_bytes as f64 / t.as_secs_f64().max(1e-12) / 1e9
}

/// The seed LZSS decoder: per-token loop, byte-by-byte literal and match
/// copies, growth left to `Vec` doubling. Kept as the speedup baseline.
fn seed_lzss_decompress(input: &[u8]) -> Option<Vec<u8>> {
    const MIN_MATCH: usize = 4;
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < input.len() {
        let flags = input[pos];
        pos += 1;
        for bit in 0..8 {
            if pos >= input.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                if pos + 3 > input.len() {
                    return None;
                }
                let dist = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize + 1;
                let len = input[pos + 2] as usize + MIN_MATCH;
                pos += 3;
                if dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                out.push(input[pos]);
                pos += 1;
            }
        }
    }
    Some(out)
}

/// The seed f16 decoder: computational binary16 → f32 conversion per element
/// (no lookup table). Kept as the speedup baseline.
fn seed_f16_decode(bytes: &[u8]) -> Option<Vec<f32>> {
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(2)
            .map(|c| {
                let h = u16::from_le_bytes([c[0], c[1]]) as u32;
                let sign = (h & 0x8000) << 16;
                let exp = (h >> 10) & 0x1f;
                let frac = h & 0x3ff;
                let bits = if exp == 0x1f {
                    sign | 0x7f80_0000 | (frac << 13)
                } else if exp == 0 {
                    if frac == 0 {
                        sign
                    } else {
                        let mut e = 0i32;
                        let mut f = frac;
                        while f & 0x400 == 0 {
                            f <<= 1;
                            e -= 1;
                        }
                        f &= 0x3ff;
                        sign | (((e + 113) as u32) << 23) | (f << 13)
                    }
                } else {
                    sign | ((exp + 127 - 15) << 23) | (frac << 13)
                };
                f32::from_bits(bits)
            })
            .collect(),
    )
}

/// Deterministic xorshift64* byte stream.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn f32(&mut self) -> f32 {
        (self.next() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Partition-like payload: repeated near-identical blocks (the similar-chunk
/// case LZSS exists for) interleaved with noise.
fn lzss_payload(total: usize) -> Vec<u8> {
    let mut rng = Rng(0x5EED1);
    let block: Vec<u8> = (0..4096).map(|_| (rng.next() >> 56) as u8).collect();
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        out.extend_from_slice(&block);
        for _ in 0..64 {
            out.push((rng.next() >> 56) as u8);
        }
    }
    out.truncate(total);
    out
}

fn main() {
    let args = Args::parse();
    let mib = args.usize("mib", 8);
    let reps = args.usize("reps", 5);
    let total = mib * (1 << 20);

    println!("# Decode-kernel microbench: {mib} MiB per codec, best of {reps}");

    let obs = mistique_core::Obs::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut record = |name: &str, raw: usize, t: Duration| {
        let g = gbps(raw, t);
        obs.gauge(&format!("bench.decode_kernels.{name}.gbps"))
            .set(g);
        obs.gauge(&format!("bench.decode_kernels.{name}.raw_bytes"))
            .set_u64(raw as u64);
        rows.push(vec![
            name.into(),
            fmt_bytes(raw as u64),
            fmt_dur(t),
            format!("{g:.2} GB/s"),
        ]);
    };

    // --- LZSS: optimized decoder vs embedded seed decoder -----------------
    let raw = lzss_payload(total);
    let packed = lzss::compress(&raw);
    let (out, t_new) = best_of(reps, || {
        lzss::decompress_with_hint(&packed, raw.len()).unwrap()
    });
    assert_eq!(out, raw, "lzss decode must round-trip");
    let (out_seed, t_seed) = best_of(reps, || seed_lzss_decompress(&packed).unwrap());
    assert_eq!(out_seed, raw, "seed lzss decode must round-trip");
    record("lzss", raw.len(), t_new);
    let lzss_speedup = t_seed.as_secs_f64() / t_new.as_secs_f64().max(1e-12);
    obs.gauge("bench.decode_kernels.lzss.speedup_vs_seed")
        .set(lzss_speedup);

    // --- RLE: long runs (the THRESHOLD/constant-column case) --------------
    let mut rng = Rng(0x5EED2);
    let mut raw = Vec::with_capacity(total);
    while raw.len() < total {
        let b = (rng.next() >> 56) as u8;
        let run = 16 + (rng.next() % 240) as usize;
        raw.extend(std::iter::repeat_n(b, run));
    }
    raw.truncate(total);
    let packed = rle::compress(&raw);
    let (out, t) = best_of(reps, || {
        rle::decompress_with_limit(&packed, raw.len()).unwrap()
    });
    assert_eq!(out, raw, "rle decode must round-trip");
    record("rle", raw.len(), t);

    // --- XOR-float: smooth f32 series (activation-like) -------------------
    let mut rng = Rng(0x5EED3);
    let n = total / 4;
    let mut acc = 0.0f32;
    let mut raw = Vec::with_capacity(total);
    for _ in 0..n {
        acc += rng.f32() * 0.01 - 0.005;
        raw.extend_from_slice(&acc.to_le_bytes());
    }
    let packed = xorf::compress(&raw).unwrap();
    let (out, t) = best_of(reps, || xorf::decompress(&packed).unwrap());
    assert_eq!(out, raw, "xorf decode must round-trip");
    record("xorf", raw.len(), t);

    // --- varint: mixed-magnitude u64s --------------------------------------
    let mut rng = Rng(0x5EED4);
    let n = total / 8;
    let values: Vec<u64> = (0..n).map(|_| rng.next() >> (rng.next() % 58)).collect();
    let mut packed = Vec::new();
    for &v in &values {
        varint::write_u64(&mut packed, v);
    }
    let (sum, t) = best_of(reps, || {
        let mut pos = 0;
        let mut sum = 0u64;
        while pos < packed.len() {
            sum = sum.wrapping_add(varint::read_u64(&packed, &mut pos).unwrap());
        }
        sum
    });
    let expect: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
    assert_eq!(sum, expect, "varint decode must round-trip");
    record("varint", n * 8, t);

    // --- f16 dequantize: table lookup vs embedded seed conversion ---------
    // Activation-like values: log-uniform magnitudes spanning the binary16
    // subnormal range (|v| < 2^-14), with exact zeros mixed in — the
    // post-ReLU tail that dominates stored DNN intermediates.
    let mut rng = Rng(0x5EED5);
    let n = total / 2;
    let values: Vec<f32> = (0..n)
        .map(|_| {
            if rng.next().is_multiple_of(16) {
                return 0.0;
            }
            let mag = 10f32.powf(rng.f32() * 8.0 - 7.0);
            if rng.next().is_multiple_of(2) {
                mag
            } else {
                -mag
            }
        })
        .collect();
    let packed = half::encode_f16(&values);
    // Warm the lookup table outside the timed region.
    let _ = half::decode_f16(&packed[..2]);
    let (out, t_new) = best_of(reps, || half::decode_f16(&packed).unwrap());
    let (out_seed, t_seed) = best_of(reps, || seed_f16_decode(&packed).unwrap());
    assert_eq!(out.len(), out_seed.len());
    for (a, b) in out.iter().zip(&out_seed) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "f16 kernels must agree bit-for-bit"
        );
    }
    record("f16", n * 4, t_new);
    let f16_speedup = t_seed.as_secs_f64() / t_new.as_secs_f64().max(1e-12);
    obs.gauge("bench.decode_kernels.f16.speedup_vs_seed")
        .set(f16_speedup);

    // --- KBIT dequantize: 8-bit codes → representatives -------------------
    let q = KbitQuantizer::fit(&values[..4096.min(values.len())], 8);
    let n = total;
    let codes: Vec<f32> = (0..n).map(|i| values[i % values.len()]).collect();
    let packed = q.encode(&codes);
    let (out, t) = best_of(reps, || q.decode(&packed, n).unwrap());
    assert_eq!(out.len(), n);
    record("kbit", n * 4, t);

    // --- THRESHOLD dequantize: packed bits → bools ------------------------
    let tq = ThresholdQuantizer::with_threshold(0.5);
    let bits: Vec<f32> = (0..total).map(|i| (i % 3) as f32).collect();
    let packed = tq.encode_packed(&bits);
    let count = bits.len();
    let (out, t) = best_of(reps, || {
        ThresholdQuantizer::decode_packed(&packed, count).unwrap()
    });
    assert_eq!(out.len(), count);
    record("threshold", count, t);

    print_table(&["codec", "raw", "decode (best)", "throughput"], &rows);
    println!("\n  speedup vs seed kernels: lzss {lzss_speedup:.2}x, f16 {f16_speedup:.2}x");

    write_obs_snapshot("decode_kernels", &obs);
}
