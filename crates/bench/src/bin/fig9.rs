//! Figure 9: effect of quantization on the VIS query (per-class mean
//! activations of a mid-network layer). The paper shows heatmaps: full
//! precision, LP_QT, 8BIT_QT and POOL_QT are visually indistinguishable
//! while 3BIT_QT and THRESHOLD_QT show obvious discrepancies. We report the
//! numeric equivalent: per-scheme deviation of the VIS matrix from the
//! full-precision one, plus the rank correlation of neuron orderings (what a
//! heatmap actually communicates).
//!
//! Flags: `--examples N --scale N --layer L`

use mistique_bench::*;
use mistique_core::diagnostics::frame_to_matrix;
use mistique_core::{CaptureScheme, FetchStrategy, StorageStrategy, ValueScheme};
use mistique_linalg::Matrix;
use mistique_nn::vgg16_cifar;
use mistique_quantize::half::f16;
use mistique_quantize::{avg_pool2d, KbitQuantizer, ThresholdQuantizer};

/// Spearman-style rank correlation between two flattened matrices.
fn rank_correlation(a: &Matrix, b: &Matrix) -> f64 {
    let ranks = |m: &Matrix| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..m.data().len()).collect();
        idx.sort_by(|&i, &j| m.data()[i].total_cmp(&m.data()[j]));
        let mut r = vec![0.0; idx.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    };
    mistique_linalg::stats::pearson(&ranks(a), &ranks(b))
}

fn max_abs_rel(a: &Matrix, b: &Matrix) -> f64 {
    let scale = a
        .data()
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(1e-12);
    a.max_abs_diff(b) / scale
}

fn class_means(values: &[Vec<f64>], labels: &[u8], n_classes: usize) -> Matrix {
    let p = values.len();
    let mut m = Matrix::zeros(n_classes, p);
    let mut counts = vec![0usize; n_classes];
    let n = values[0].len();
    for i in 0..n {
        counts[labels[i] as usize] += 1;
    }
    for (j, col) in values.iter().enumerate() {
        for (i, v) in col.iter().enumerate() {
            m[(labels[i] as usize, j)] += v;
        }
    }
    for c in 0..n_classes {
        if counts[c] > 0 {
            for j in 0..p {
                m[(c, j)] /= counts[c] as f64;
            }
        }
    }
    m
}

fn main() {
    let args = Args::parse();
    let examples = args.usize("examples", DEFAULT_DNN_EXAMPLES);
    let scale = args.usize("scale", DEFAULT_VGG_SCALE);

    println!("# Figure 9: VIS fidelity under quantization (layer-9-style mid-conv layer)");
    println!(
        "# paper: full == LP_QT == 8BIT_QT == POOL_QT visually; 3BIT_QT and THRESHOLD_QT degrade"
    );

    // Log at full precision so every scheme can be derived from one source.
    let dir = tempfile::tempdir().unwrap();
    let (mut sys, ids, data) = dnn_system(
        dir.path(),
        vgg16_cifar(scale),
        examples,
        1,
        CaptureScheme {
            value: ValueScheme::Full,
            pool_sigma: None,
        },
        StorageStrategy::Dedup,
    );
    let model = ids[0].clone();
    let n_layers = sys.intermediates_of(&model).len();
    let layer = args.usize("layer", 9.min(n_layers));
    let interm = format!("{model}.layer{layer}");
    let shape = sys.metadata().intermediate(&interm).unwrap().shape.unwrap();
    let (c, h, w) = shape;
    println!("  layer {layer}: {c} channels of {h}x{w} maps, {examples} examples\n");

    let fetched = sys
        .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
        .unwrap();
    let full_matrix = frame_to_matrix(&fetched.frame);
    let cols: Vec<Vec<f64>> = fetched
        .frame
        .columns()
        .iter()
        .map(|col| col.data.to_f64())
        .collect();
    let all: Vec<f32> = full_matrix.data().iter().map(|&v| v as f32).collect();

    let vis_full = class_means(&cols, &data.labels, 10);

    // Apply each scheme in memory and recompute VIS.
    let apply = |name: &str, transform: &dyn Fn(&[f64]) -> Vec<f64>| -> Vec<String> {
        let qcols: Vec<Vec<f64>> = cols.iter().map(|col| transform(col)).collect();
        // POOL changes the column count; compare on the per-class matrix of
        // whatever columns remain by pooling the *VIS matrix* instead — for
        // value schemes the column count is unchanged.
        let vis_q = class_means(&qcols, &data.labels, 10);
        vec![
            name.to_string(),
            format!("{:.5}", max_abs_rel(&vis_full, &vis_q)),
            format!("{:.4}", rank_correlation(&vis_full, &vis_q)),
        ]
    };

    let q8 = KbitQuantizer::fit(&all, 8);
    let q3 = KbitQuantizer::fit(&all, 3);
    let thr = ThresholdQuantizer::fit(&all, 0.995);

    let mut rows = vec![
        vec!["full (f32)".into(), "0.00000".into(), "1.0000".into()],
        apply("LP_QT (f16)", &|col| {
            col.iter()
                .map(|&v| f16::from_f32(v as f32).to_f32() as f64)
                .collect()
        }),
        apply("8BIT_QT", &|col| {
            col.iter()
                .map(|&v| q8.value_of(q8.code_of(v as f32)) as f64)
                .collect()
        }),
        apply("3BIT_QT", &|col| {
            col.iter()
                .map(|&v| q3.value_of(q3.code_of(v as f32)) as f64)
                .collect()
        }),
        apply("THRESHOLD_QT (99.5%)", &|col| {
            col.iter()
                .map(|&v| if v as f32 > thr.threshold() { 1.0 } else { 0.0 })
                .collect()
        }),
    ];

    // POOL_QT(sigma=h): each map becomes one value; the VIS heatmap of
    // per-map means is exactly the pooled VIS — compare channel-mean heatmaps.
    {
        let pool_cols: Vec<Vec<f64>> = (0..c)
            .map(|ch| {
                (0..examples)
                    .map(|i| {
                        let map: Vec<f32> = (ch * h * w..(ch + 1) * h * w)
                            .map(|j| cols[j][i] as f32)
                            .collect();
                        avg_pool2d(&map, h, w, h.max(w))[0] as f64
                    })
                    .collect()
            })
            .collect();
        let vis_pool = class_means(&pool_cols, &data.labels, 10);
        // Compare against the channel-averaged full VIS (same resolution).
        let mut vis_full_ch = Matrix::zeros(10, c);
        for g in 0..10 {
            for ch in 0..c {
                let mut s = 0.0;
                for j in ch * h * w..(ch + 1) * h * w {
                    s += vis_full[(g, j)];
                }
                vis_full_ch[(g, ch)] = s / (h * w) as f64;
            }
        }
        rows.push(vec![
            format!("POOL_QT({})", h.max(w)),
            format!("{:.5}", max_abs_rel(&vis_full_ch, &vis_pool)),
            format!("{:.4}", rank_correlation(&vis_full_ch, &vis_pool)),
        ]);
    }

    print_table(
        &["scheme", "max |Δ| / max |full|", "rank corr vs full"],
        &rows,
    );
    println!("\n  interpretation: rank corr ~1.0 and tiny Δ = heatmap indistinguishable from full");
    println!("  precision (paper's LP/8BIT/POOL panels); low rank corr = visible discrepancy");
    println!("  (paper's 3BIT/THRESHOLD panels).");
}
