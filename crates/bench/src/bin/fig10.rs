//! Figure 10: adaptive materialization on a synthetic Zillow workload.
//!
//! 25 queries drawn (with repetition) from the Table 5 query pool run
//! against ADAPTIVE (γ = 0.5 s/KB in the paper); storage is compared with
//! STORE_ALL and DEDUP, and per-query latency is tracked for three queries
//! with different behaviours: VIS (drops sharply once materialized),
//! COL_DIFF (drops after a few repetitions), COL_DIST (stays unchanged —
//! its intermediate never clears γ).
//!
//! Flags: `--rows N --queries N --gamma-per-kb F`

use std::sync::Arc;

use mistique_bench::*;
use mistique_core::{Mistique, MistiqueConfig, StorageStrategy};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Q {
    Vis,
    ColDiff,
    ColDist,
    Topk,
    RowDiff,
}

fn run_query(
    sys: &mut Mistique,
    q: Q,
    interms: &[String],
    other_pred: &str,
) -> std::time::Duration {
    let features = &interms[7];
    let preds = interms.last().unwrap();
    let (_, t) = time(|| match q {
        Q::Vis => {
            let r = sys.get_intermediate(features, None, None).unwrap();
            let _: Vec<f64> = r
                .frame
                .columns()
                .iter()
                .map(|c| {
                    let v = c.data.to_f64();
                    v.iter().sum::<f64>() / v.len() as f64
                })
                .collect();
        }
        Q::ColDiff => {
            let a = sys.get_intermediate(preds, Some(&["pred"]), None).unwrap();
            let b = sys
                .get_intermediate(other_pred, Some(&["pred"]), None)
                .unwrap();
            let va = a.frame.columns()[0].data.to_f64();
            let vb = b.frame.columns()[0].data.to_f64();
            let _ = va
                .iter()
                .zip(&vb)
                .filter(|(x, y)| (**x - **y).abs() > 1e-9)
                .count();
        }
        Q::ColDist => {
            // Distribution over a *raw input* column: recreating it is just
            // a CSV parse, so its gamma never clears the threshold and the
            // query's latency stays unchanged (the paper's COL_DIST line).
            let r = sys
                .get_intermediate(&interms[0], Some(&["tax_value"]), None)
                .unwrap();
            let _ = r.frame.columns()[0].data.to_f64();
        }
        Q::Topk => {
            let r = sys.get_intermediate(preds, Some(&["pred"]), None).unwrap();
            let mut v: Vec<f64> = r.frame.columns()[0].data.to_f64();
            v.sort_by(|a, b| b.total_cmp(a));
            v.truncate(10);
        }
        Q::RowDiff => {
            let r = sys.get_intermediate(features, None, None).unwrap();
            let _: Vec<f64> = r
                .frame
                .columns()
                .iter()
                .map(|c| {
                    let v = c.data.to_f64();
                    v[0] - v[1]
                })
                .collect();
        }
    });
    t
}

fn main() {
    let args = Args::parse();
    let rows = args.usize("rows", DEFAULT_ZILLOW_ROWS);
    let n_queries = args.usize("queries", 25);
    // The paper uses 0.5 s/KB at testbed scale where re-runs cost tens of
    // seconds; our laptop-scale savings are milliseconds, so the equivalent
    // default is proportionally smaller. Override with --gamma-per-kb.
    let gamma_per_kb = args.f64("gamma-per-kb", 3e-5);
    let gamma_min = gamma_per_kb / 1024.0; // s/KB -> s/byte

    println!("# Figure 10: adaptive materialization (gamma = {gamma_per_kb} s/KB; paper used 0.5 s/KB at testbed scale)");
    println!(
        "# paper: ADAPTIVE storage << DEDUP << STORE_ALL; hot queries speed up once materialized"
    );

    // Storage comparison.
    let storage_of = |strategy: StorageStrategy| -> u64 {
        let dir = tempfile::tempdir().unwrap();
        let (sys, _, _) = zillow_system(dir.path(), rows, 2, strategy);
        sys.store().disk_bytes().unwrap()
    };
    let all = storage_of(StorageStrategy::StoreAll);
    let dedup = storage_of(StorageStrategy::Dedup);

    // Adaptive run with the query workload.
    let dir = tempfile::tempdir().unwrap();
    let data = Arc::new(ZillowData::generate(rows, 42));
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            storage: StorageStrategy::Adaptive { gamma_min },
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let mut ids = Vec::new();
    for p in zillow_pipelines().into_iter().take(2) {
        let id = sys.register_trad(p, Arc::clone(&data)).unwrap();
        sys.log_intermediates(&id).unwrap();
        ids.push(id);
    }
    let interms = sys.intermediates_of(&ids[0]);
    let other_pred = sys.intermediates_of(&ids[1]).last().unwrap().clone();

    let mut rng = StdRng::seed_from_u64(9);
    let pool = [Q::Vis, Q::ColDiff, Q::ColDist, Q::Topk, Q::RowDiff];
    let mut history: Vec<(usize, Q, std::time::Duration)> = Vec::new();
    for qi in 0..n_queries {
        let q = pool[rng.gen_range(0..pool.len())];
        let t = run_query(&mut sys, q, &interms, &other_pred);
        history.push((qi, q, t));
    }
    sys.flush().unwrap();
    let adaptive = sys.store().disk_bytes().unwrap();

    println!("\n== storage footprint (left panel) ==");
    print_table(
        &["strategy", "compressed bytes", "vs STORE_ALL"],
        &[
            vec!["STORE_ALL".into(), fmt_bytes(all), "1.0x".into()],
            vec![
                "DEDUP".into(),
                fmt_bytes(dedup),
                format!("{:.2}x", dedup as f64 / all as f64),
            ],
            vec![
                format!("ADAPTIVE (after {n_queries} queries)"),
                fmt_bytes(adaptive),
                format!("{:.3}x", adaptive as f64 / all as f64),
            ],
        ],
    );

    println!("\n== per-query latency over the workload (right panel) ==");
    let rows_out: Vec<Vec<String>> = history
        .iter()
        .map(|(i, q, t)| vec![format!("{}", i + 1), format!("{q:?}"), fmt_dur(*t)])
        .collect();
    print_table(&["query #", "kind", "latency"], &rows_out);

    // Summarize the drop per query kind: first vs last occurrence.
    println!("\n== first-vs-last latency per query kind ==");
    let mut rows_out = Vec::new();
    for q in pool {
        let times: Vec<_> = history.iter().filter(|(_, k, _)| *k == q).collect();
        if times.len() >= 2 {
            let first = times[0].2;
            let last = times[times.len() - 1].2;
            rows_out.push(vec![
                format!("{q:?}"),
                fmt_dur(first),
                fmt_dur(last),
                format!("{:.1}x", first.as_secs_f64() / last.as_secs_f64().max(1e-9)),
            ]);
        }
    }
    print_table(&["query", "first run", "last run", "speedup"], &rows_out);

    // Machine-readable perf record: the adaptive system's full metric/span
    // snapshot plus the storage comparison as gauges.
    let obs = sys.obs().clone();
    obs.gauge("bench.fig10.store_all_bytes").set_u64(all);
    obs.gauge("bench.fig10.dedup_bytes").set_u64(dedup);
    obs.gauge("bench.fig10.adaptive_bytes").set_u64(adaptive);
    write_obs_snapshot("fig10", &obs);
}
