//! Table 2: effect of quantization on SVCCA.
//!
//! Mean CCA coefficient between the CIFAR10_VGG16 logits and the
//! representation of layers {11, 16, 19}, computed on full-precision data,
//! 8BIT_QT-reconstructed data, and pool(2)-summarized data. The paper finds
//! 8BIT_QT ≈ full precision, while pool(2) introduces a discrepancy that
//! shrinks with depth.
//!
//! Flags: `--examples N --scale N --layers "11,16,19"`

use mistique_bench::*;
use mistique_core::diagnostics::frame_to_matrix;
use mistique_core::{CaptureScheme, FetchStrategy, StorageStrategy, ValueScheme};
use mistique_linalg::{svcca, Matrix};
use mistique_nn::vgg16_cifar;
use mistique_quantize::{avg_pool2d, KbitQuantizer};

fn pool2_matrix(m: &Matrix, c: usize, h: usize, w: usize) -> Matrix {
    let oh = h.div_ceil(2);
    let ow = w.div_ceil(2);
    let mut out = Matrix::zeros(m.rows(), c * oh * ow);
    for i in 0..m.rows() {
        let row: Vec<f32> = m.row(i).iter().map(|&v| v as f32).collect();
        let mut offset = 0;
        for ch in 0..c {
            let pooled = avg_pool2d(&row[ch * h * w..(ch + 1) * h * w], h, w, 2);
            for (k, v) in pooled.iter().enumerate() {
                out[(i, offset + k)] = *v as f64;
            }
            offset += oh * ow;
        }
    }
    out
}

fn kbit_matrix(m: &Matrix, bits: u32) -> Matrix {
    let all: Vec<f32> = m.data().iter().map(|&v| v as f32).collect();
    let q = KbitQuantizer::fit(&all, bits);
    let data = m
        .data()
        .iter()
        .map(|&v| q.value_of(q.code_of(v as f32)) as f64)
        .collect();
    Matrix::from_vec(m.rows(), m.cols(), data)
}

fn main() {
    let args = Args::parse();
    let examples = args.usize("examples", DEFAULT_DNN_EXAMPLES);
    let scale = args.usize("scale", DEFAULT_VGG_SCALE);

    println!("# Table 2: SVCCA mean CCA coefficient, logits vs layer representation");
    println!("# paper: 8BIT_QT matches full precision; pool(2) discrepancy shrinks with depth");

    let dir = tempfile::tempdir().unwrap();
    let (mut sys, ids, _) = dnn_system(
        dir.path(),
        vgg16_cifar(scale),
        examples,
        1,
        CaptureScheme {
            value: ValueScheme::Full,
            pool_sigma: None,
        },
        StorageStrategy::Dedup,
    );
    let model = ids[0].clone();
    let n_layers = sys.intermediates_of(&model).len();
    let layer_spec = args.string("layers", "11,16,19");
    let layers: Vec<usize> = layer_spec
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&l| l >= 1 && l <= n_layers)
        .collect();

    let logits_id = format!("{model}.layer{n_layers}");
    let logits = frame_to_matrix(
        &sys.fetch_with_strategy(&logits_id, None, None, FetchStrategy::Read)
            .unwrap()
            .frame,
    );

    let mut rows = Vec::new();
    for &l in &layers {
        let interm = format!("{model}.layer{l}");
        let shape = sys.metadata().intermediate(&interm).unwrap().shape.unwrap();
        let full = frame_to_matrix(
            &sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
                .unwrap()
                .frame,
        );
        let r_full = svcca(&logits, &full, 0.99).mean_correlation();
        let r_8bit = svcca(&logits, &kbit_matrix(&full, 8), 0.99).mean_correlation();
        let (c, h, w) = shape;
        let r_pool = if h > 1 {
            svcca(&logits, &pool2_matrix(&full, c, h, w), 0.99).mean_correlation()
        } else {
            r_full
        };
        rows.push(vec![
            format!("layer{l}"),
            format!("{r_full:.4}"),
            format!("{r_8bit:.4}"),
            format!("{r_pool:.4}"),
            format!("{:+.4}", r_8bit - r_full),
            format!("{:+.4}", r_pool - r_full),
        ]);
    }
    print_table(
        &[
            "layer",
            "full precision",
            "8BIT_QT",
            "POOL_QT(2)",
            "Δ 8bit",
            "Δ pool2",
        ],
        &rows,
    );
}
