//! Read-path concurrency: cold `read_stored` of a multi-column intermediate,
//! serial vs `read_parallelism >= 4`. Partition fetches and per-column block
//! decodes run on crossbeam-scoped threads; the frames must come back
//! byte-identical at every worker count, with the parallel path faster on a
//! wide intermediate.
//!
//! Flags: `--rows N --reps N --workers N`

use std::sync::Arc;
use std::time::Duration;

use mistique_bench::*;
use mistique_core::{FetchStrategy, Mistique, MistiqueConfig};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn assert_bit_identical(a: &mistique_dataframe::DataFrame, b: &mistique_dataframe::DataFrame) {
    assert_eq!(a.n_rows(), b.n_rows());
    for col in a.columns() {
        let x = col.data.to_f64();
        let y = b.column(&col.name).unwrap().data.to_f64();
        assert_eq!(x.len(), y.len(), "col {}", col.name);
        for (i, (u, v)) in x.iter().zip(&y).enumerate() {
            assert_eq!(u.to_bits(), v.to_bits(), "col {} row {i}", col.name);
        }
    }
}

fn main() {
    let args = Args::parse();
    let rows = args.usize("rows", 20_000);
    let reps = args.usize("reps", 5);
    let workers = args.usize("workers", 4);

    println!("# Read-path concurrency: cold read_stored, serial vs {workers} workers");

    let dir = tempfile::tempdir().unwrap();
    // Delta frames off: this bench isolates the parallel decode path, and
    // its committed baseline predates base+delta storage. Delta rehydration
    // cost has its own bench (delta_dedup) with its own read timings.
    let config = MistiqueConfig {
        datastore: mistique_store::DataStoreConfig {
            delta_enabled: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut sys = Mistique::open(dir.path(), config).unwrap();
    let data = Arc::new(ZillowData::generate(rows, 1));
    let id = sys
        .register_trad(zillow_pipelines().remove(0), data)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    sys.store_mut().flush().unwrap();

    // Bench the widest materialized intermediate (most columns to decode).
    let interm = sys
        .intermediates_of(&id)
        .into_iter()
        .max_by_key(|i| sys.metadata().intermediate(i).unwrap().columns.len())
        .unwrap();
    let meta = sys.metadata().intermediate(&interm).unwrap();
    let n_cols = meta.columns.len();
    println!(
        "  intermediate {interm}: {n_cols} columns x {} rows\n",
        meta.n_rows
    );

    // Cold read: clear the partition read cache before every repetition so
    // each fetch pays the full disk + decode cost.
    let mut measure = |parallelism: usize| {
        sys.set_read_parallelism(parallelism);
        let mut best = Duration::MAX;
        let mut frame = None;
        for _ in 0..reps {
            sys.store_mut().clear_read_cache();
            let (fetched, t) = time(|| {
                sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
                    .unwrap()
            });
            best = best.min(t);
            frame = Some(fetched.frame);
        }
        (frame.unwrap(), best)
    };

    let (serial_frame, serial) = measure(1);
    let (parallel_frame, parallel) = measure(workers);
    assert_bit_identical(&serial_frame, &parallel_frame);

    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-12);
    print_table(
        &["read_parallelism", "cold read (best of reps)", "speedup"],
        &[
            vec!["1".into(), fmt_dur(serial), "1.00x".into()],
            vec![
                format!("{workers}"),
                fmt_dur(parallel),
                format!("{speedup:.2}x"),
            ],
        ],
    );
    println!("\n  frames byte-identical across worker counts: yes");

    // Per-query audit of the final (parallel) cold read: plan, predicted vs
    // actual cost, partition/codec attribution.
    if let Some(report) = sys.last_report() {
        println!("\nEXPLAIN of the last cold read:");
        print!("{}", report.render());
    }
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cpus < 2 {
        println!(
            "  note: host reports {cpus} CPU; scoped threads cannot beat the serial\n\
             \x20 path here — rerun on a multi-core host for the speedup figure"
        );
    }

    let obs = sys.obs().clone();
    obs.gauge("bench.read_parallel.host_cpus")
        .set_u64(cpus as u64);
    obs.gauge("bench.read_parallel.workers")
        .set_u64(workers as u64);
    obs.gauge("bench.read_parallel.columns")
        .set_u64(n_cols as u64);
    obs.gauge("bench.read_parallel.rows").set_u64(rows as u64);
    obs.gauge("bench.read_parallel.serial_ms")
        .set(serial.as_secs_f64() * 1e3);
    obs.gauge("bench.read_parallel.parallel_ms")
        .set(parallel.as_secs_f64() * 1e3);
    obs.gauge("bench.read_parallel.speedup").set(speedup);
    write_obs_snapshot("read_parallel", &obs);
}
