//! Indexed top-k / threshold reads vs full column scans on the DNN
//! workload — the DeepEverest setting: "which examples maximally activate
//! neuron j". The max-activation list answers top-k without touching the
//! store at all; zone maps prune RowBlocks for threshold scans. Both must
//! return bit-identical answers to the scan they replace.
//!
//! Flags: `--examples N --k N --reps N --scale N`

use std::time::Duration;

use mistique_bench::*;
use mistique_core::{CaptureScheme, PlanChoice, StorageStrategy};
use mistique_nn::simple_cnn;

fn main() {
    let args = Args::parse();
    let examples = args.usize("examples", 60_000);
    let k = args.usize("k", 10);
    let reps = args.usize("reps", 5);
    let scale = args.usize("scale", 16);

    println!("# Indexed top-k / threshold reads vs scans: simple CNN, {examples} examples");

    let dir = tempfile::tempdir().unwrap();
    let (mut sys, ids, _data) = dnn_system(
        dir.path(),
        simple_cnn(scale),
        examples,
        1,
        CaptureScheme::pool2(),
        StorageStrategy::Dedup,
    );
    // Reads always beat re-running the network here; pin the planner open
    // so every repetition takes the same plan.
    sys.cost_model_mut().read_bandwidth = 1e18;

    // The dense layer right before the classifier head: one neuron per
    // column, every example a row.
    let interms = sys.intermediates_of(&ids[0]);
    let interm = interms[interms.len() - 2].clone();
    let meta = sys.metadata().intermediate(&interm).unwrap();
    let col = meta.columns[0].clone();
    println!(
        "  intermediate {interm}: {} columns x {} rows, querying {col}\n",
        meta.columns.len(),
        meta.n_rows
    );

    // --- indexed plans -----------------------------------------------------
    let mut best_topk_idx = Duration::MAX;
    let mut topk_indexed = Vec::new();
    for _ in 0..reps {
        sys.store_mut().clear_read_cache();
        let (r, t) = time(|| sys.topk(&interm, &col, k).unwrap());
        best_topk_idx = best_topk_idx.min(t);
        topk_indexed = r;
    }
    let report = sys.last_report().expect("topk leaves a report").clone();
    assert_eq!(
        report.plan,
        PlanChoice::IndexedRead,
        "top-k must serve from the max-activation list"
    );

    // Threshold at the k-th activation: ~k matching rows, the selective
    // query zone maps are built for.
    let threshold = topk_indexed.last().map(|(_, v)| *v).unwrap_or(0.0);
    let mut best_gt_idx = Duration::MAX;
    let mut gt_indexed = Vec::new();
    for _ in 0..reps {
        sys.store_mut().clear_read_cache();
        let (r, t) = time(|| sys.select_where_gt(&interm, &col, threshold).unwrap());
        best_gt_idx = best_gt_idx.min(t);
        gt_indexed = r;
    }
    let gt_report = sys.last_report().unwrap().clone();
    let pruning = gt_report.pruning.expect("indexed scan reports pruning");

    // --- scan plans --------------------------------------------------------
    sys.drop_index(&interm);
    let mut best_topk_scan = Duration::MAX;
    let mut topk_scan = Vec::new();
    for _ in 0..reps {
        sys.store_mut().clear_read_cache();
        let (r, t) = time(|| sys.topk(&interm, &col, k).unwrap());
        best_topk_scan = best_topk_scan.min(t);
        topk_scan = r;
    }
    assert_ne!(sys.last_report().unwrap().plan, PlanChoice::IndexedRead);
    let mut best_gt_scan = Duration::MAX;
    let mut gt_scan = Vec::new();
    for _ in 0..reps {
        sys.store_mut().clear_read_cache();
        let (r, t) = time(|| sys.select_where_gt(&interm, &col, threshold).unwrap());
        best_gt_scan = best_gt_scan.min(t);
        gt_scan = r;
    }

    // The index is a pure accelerator: answers must be bit-identical.
    assert_eq!(topk_indexed.len(), topk_scan.len());
    for (a, b) in topk_indexed.iter().zip(&topk_scan) {
        assert_eq!(a.0, b.0, "top-k rows diverge");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "top-k values diverge");
    }
    assert_eq!(gt_indexed, gt_scan, "threshold row sets diverge");

    let topk_speedup = best_topk_scan.as_secs_f64() / best_topk_idx.as_secs_f64().max(1e-12);
    let gt_speedup = best_gt_scan.as_secs_f64() / best_gt_idx.as_secs_f64().max(1e-12);
    print_table(
        &["query", "scan (best)", "indexed (best)", "speedup"],
        &[
            vec![
                format!("topk k={k}"),
                fmt_dur(best_topk_scan),
                fmt_dur(best_topk_idx),
                format!("{topk_speedup:.2}x"),
            ],
            vec![
                format!("select > p{k}"),
                fmt_dur(best_gt_scan),
                fmt_dur(best_gt_idx),
                format!("{gt_speedup:.2}x"),
            ],
        ],
    );
    println!(
        "\n  answers bit-identical: yes\n  zone maps skipped {}/{} blocks ({} matching rows)",
        pruning.blocks_skipped,
        pruning.blocks_total,
        gt_indexed.len()
    );

    let obs = sys.obs().clone();
    obs.gauge("bench.topk_index.examples")
        .set_u64(examples as u64);
    obs.gauge("bench.topk_index.k").set_u64(k as u64);
    obs.gauge("bench.topk_index.topk_scan_us")
        .set(best_topk_scan.as_secs_f64() * 1e6);
    obs.gauge("bench.topk_index.topk_indexed_us")
        .set(best_topk_idx.as_secs_f64() * 1e6);
    obs.gauge("bench.topk_index.topk_speedup").set(topk_speedup);
    obs.gauge("bench.topk_index.gt_scan_us")
        .set(best_gt_scan.as_secs_f64() * 1e6);
    obs.gauge("bench.topk_index.gt_indexed_us")
        .set(best_gt_idx.as_secs_f64() * 1e6);
    obs.gauge("bench.topk_index.gt_speedup").set(gt_speedup);
    obs.gauge("bench.topk_index.blocks_total")
        .set_u64(pruning.blocks_total as u64);
    obs.gauge("bench.topk_index.blocks_skipped")
        .set_u64(pruning.blocks_skipped as u64);
    write_obs_snapshot("topk_index", &obs);
}
