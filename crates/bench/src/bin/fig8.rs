//! Figure 8: the read-vs-rerun trade-off across layers and example counts —
//! measured (8a) and as predicted by the cost model (8b). The shapes must
//! agree: reading wins everywhere except the earliest layer at large n_ex
//! (the "Layer1 anomaly": huge intermediate, trivial to recompute).
//!
//! Flags: `--examples N --scale N`

use mistique_bench::*;
use mistique_core::{CaptureScheme, FetchStrategy, StorageStrategy};
use mistique_nn::vgg16_cifar;

fn main() {
    let args = Args::parse();
    let examples = args.usize("examples", DEFAULT_DNN_EXAMPLES);
    let scale = args.usize("scale", DEFAULT_VGG_SCALE);

    println!("# Figure 8: measured (a) vs cost-model-predicted (b) retrieval times");
    println!("# paper: read beats re-run for all layers except Layer1 at >10K examples;");
    println!("#        both sides scale linearly in n_ex and the predictions match the measurements' shape");

    let dir = tempfile::tempdir().unwrap();
    let (mut sys, ids, _) = dnn_system(
        dir.path(),
        vgg16_cifar(scale),
        examples,
        1,
        CaptureScheme::pool2(),
        StorageStrategy::Dedup,
    );
    let model = ids[0].clone();
    let n_layers = sys.intermediates_of(&model).len();
    let layers = [1usize, 6, 11, 16, n_layers];
    let fracs = [0.125, 0.25, 0.5, 1.0];
    let n_exs: Vec<usize> = fracs
        .iter()
        .map(|f| ((examples as f64) * f) as usize)
        .collect();

    println!("\n== Fig 8a: measured fetch time (seconds), read / re-run ==");
    let mut rows = Vec::new();
    for &l in &layers {
        let interm = format!("{model}.layer{l}");
        let mut cells = vec![format!("layer{l}")];
        for &n in &n_exs {
            sys.store_mut().clear_read_cache();
            let (_, tr) = time(|| {
                sys.fetch_with_strategy(&interm, None, Some(n), FetchStrategy::Read)
                    .unwrap()
            });
            let (_, tx) = time(|| {
                sys.fetch_with_strategy(&interm, None, Some(n), FetchStrategy::Rerun)
                    .unwrap()
            });
            cells.push(format!(
                "{:.4}/{:.4}{}",
                tr.as_secs_f64(),
                tx.as_secs_f64(),
                if tr <= tx { " R" } else { " X" }
            ));
        }
        rows.push(cells);
    }
    let mut headers: Vec<String> = vec!["layer".into()];
    headers.extend(n_exs.iter().map(|n| format!("n_ex={n}")));
    let hs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&hs, &rows);
    println!("  (R = read faster, X = re-run faster)");

    println!("\n== Fig 8b: cost-model prediction (seconds), read / re-run ==");
    let mut rows = Vec::new();
    let mut agree = 0usize;
    let mut total = 0usize;
    for &l in &layers {
        let interm = format!("{model}.layer{l}");
        let meta = sys.metadata().intermediate(&interm).unwrap().clone();
        let mmeta = sys.metadata().model(&model).unwrap().clone();
        let mut cells = vec![format!("layer{l}")];
        for &n in &n_exs {
            let pr = sys.cost_model().t_read(&meta, n);
            let px = sys.cost_model().t_rerun(&mmeta, &meta, n);
            cells.push(format!(
                "{:.4}/{:.4}{}",
                pr,
                px,
                if pr <= px { " R" } else { " X" }
            ));
            total += 1;
            // Re-measure quickly to score prediction agreement.
            sys.store_mut().clear_read_cache();
            let (_, tr) = time(|| {
                sys.fetch_with_strategy(&interm, None, Some(n), FetchStrategy::Read)
                    .unwrap()
            });
            let (_, tx) = time(|| {
                sys.fetch_with_strategy(&interm, None, Some(n), FetchStrategy::Rerun)
                    .unwrap()
            });
            if (pr <= px) == (tr <= tx) {
                agree += 1;
            }
        }
        rows.push(cells);
    }
    print_table(&hs, &rows);
    println!(
        "\n  prediction/measurement agreement on the read-vs-rerun choice: {agree}/{total} cells"
    );
}
