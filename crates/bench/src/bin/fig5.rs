//! Figure 5: end-to-end execution times for the diagnostic queries of
//! Table 5, fetched by reading stored intermediates vs re-running the model.
//!
//! - `--part a` (default): TRAD (Zillow) — the paper reports read always
//!   wins, 2.5×–390×.
//! - `--part b|c|d`: DNN (CIFAR10_VGG16) at layer 21 / 11 / 1 — the paper
//!   reports 60–210× (L21), 2–42× (L11), and re-run winning for some queries
//!   at L1.
//!
//! Flags: `--rows N --examples N --scale N --part a|b|c|d|all`

use mistique_bench::*;
use mistique_core::{FetchStrategy, Mistique, StorageStrategy};
use mistique_linalg::stats::pearson;
use mistique_nn::vgg16_cifar;
use std::time::Duration;

struct QueryOutcome {
    name: String,
    read: Duration,
    rerun: Duration,
    chosen: FetchStrategy,
}

fn row(q: QueryOutcome) -> Vec<String> {
    let speedup = q.rerun.as_secs_f64() / q.read.as_secs_f64().max(1e-12);
    vec![
        q.name,
        fmt_dur(q.read),
        fmt_dur(q.rerun),
        format!("{:?}", q.chosen),
        format!("{speedup:.1}x"),
    ]
}

/// Run one named query under both strategies; `f` executes the analysis
/// given the fetched frame columns.
fn measure(
    sys: &mut Mistique,
    name: &str,
    interm: &str,
    cols: Option<&[&str]>,
    n_ex: Option<usize>,
    compute: impl Fn(&mistique_dataframe::DataFrame),
) -> QueryOutcome {
    // Cold read: drop the disk read cache first.
    sys.store_mut().clear_read_cache();
    let (read_res, read) = time(|| {
        sys.fetch_with_strategy(interm, cols, n_ex, FetchStrategy::Read)
            .expect("read fetch")
    });
    compute(&read_res.frame);
    let (rerun_res, rerun) = time(|| {
        sys.fetch_with_strategy(interm, cols, n_ex, FetchStrategy::Rerun)
            .expect("rerun fetch")
    });
    compute(&rerun_res.frame);
    let chosen = if read_res.predicted_rerun >= read_res.predicted_read {
        FetchStrategy::Read
    } else {
        FetchStrategy::Rerun
    };
    QueryOutcome {
        name: name.to_string(),
        read,
        rerun,
        chosen,
    }
}

fn part_a(rows: usize) {
    println!("\n== Fig 5a: TRAD (Zillow) query times, read vs re-run ==");
    let dir = tempfile::tempdir().unwrap();
    let (mut sys, ids, data) = zillow_system(dir.path(), rows, 6, StorageStrategy::Dedup);
    let p0 = &ids[0]; // P1_v0
    let interms = sys.intermediates_of(p0);
    let raw_props = interms[0].clone(); // ReadCSV(properties)
    let features = interms
        .iter()
        .find(|i| i.contains("DropColumns") && !i.contains("interm8"))
        .cloned()
        .unwrap_or_else(|| interms[6].clone());
    let preds = interms.last().unwrap().clone();
    // A second model's predictions for COL_DIFF.
    let preds_b = sys.intermediates_of(&ids[1]).last().unwrap().clone();

    let mut rows_out = Vec::new();

    // FCFR: POINTQ — average lot size feature for Home-135.
    rows_out.push(row(measure(
        &mut sys,
        "POINTQ (FCFR)",
        &raw_props,
        Some(&["lot_size"]),
        None,
        |f| {
            let _ = f.columns()[0].data.to_f64()[135];
        },
    )));
    // FCFR: TOPK — prediction error on the 10 most recently built homes.
    rows_out.push(row(measure(
        &mut sys,
        "TOPK (FCFR)",
        &raw_props,
        Some(&["year_built"]),
        None,
        |f| {
            let mut v: Vec<(usize, f64)> = f.columns()[0]
                .data
                .to_f64()
                .into_iter()
                .enumerate()
                .collect();
            v.sort_by(|a, b| b.1.total_cmp(&a.1));
            v.truncate(10);
        },
    )));
    // FCMR: COL_DIFF — compare model performance between two pipelines.
    {
        sys.store_mut().clear_read_cache();
        let (ra, t1) = time(|| {
            sys.fetch_with_strategy(&preds, Some(&["pred"]), None, FetchStrategy::Read)
                .unwrap()
        });
        let (rb, t2) = time(|| {
            sys.fetch_with_strategy(&preds_b, Some(&["pred"]), None, FetchStrategy::Read)
                .unwrap()
        });
        let (_, t3) = time(|| {
            sys.fetch_with_strategy(&preds, Some(&["pred"]), None, FetchStrategy::Rerun)
                .unwrap()
        });
        let (_, t4) = time(|| {
            sys.fetch_with_strategy(&preds_b, Some(&["pred"]), None, FetchStrategy::Rerun)
                .unwrap()
        });
        let a = ra.frame.columns()[0].data.to_f64();
        let b = rb.frame.columns()[0].data.to_f64();
        let _diff = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| (**x - **y).abs() > 1e-9)
            .count();
        rows_out.push(row(QueryOutcome {
            name: "COL_DIFF (FCMR)".into(),
            read: t1 + t2,
            rerun: t3 + t4,
            chosen: if ra.predicted_rerun >= ra.predicted_read {
                FetchStrategy::Read
            } else {
                FetchStrategy::Rerun
            },
        }));
    }
    // FCMR: COL_DIST — plot the error rates for all homes.
    rows_out.push(row(measure(
        &mut sys,
        "COL_DIST (FCMR)",
        &preds,
        Some(&["pred"]),
        None,
        |f| {
            let v = f.columns()[0].data.to_f64();
            let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let w = ((hi - lo) / 20.0).max(1e-12);
            let mut hist = [0usize; 20];
            for x in v {
                hist[(((x - lo) / w) as usize).min(19)] += 1;
            }
        },
    )));
    // MCFR: KNN — predictions for the 10 homes most similar to Home-50.
    rows_out.push(row(measure(
        &mut sys,
        "KNN (MCFR)",
        &features,
        None,
        None,
        |f| {
            let cols: Vec<Vec<f64>> = f.columns().iter().map(|c| c.data.to_f64()).collect();
            let n = f.n_rows();
            let mut d: Vec<(usize, f64)> = (0..n)
                .map(|i| (i, cols.iter().map(|c| (c[i] - c[50]).powi(2)).sum()))
                .collect();
            d.sort_by(|a, b| a.1.total_cmp(&b.1));
            d.truncate(11);
        },
    )));
    // MCFR: ROW_DIFF — compare features for Home-50 and Home-55.
    rows_out.push(row(measure(
        &mut sys,
        "ROW_DIFF (MCFR)",
        &features,
        None,
        None,
        |f| {
            let _: Vec<f64> = f
                .columns()
                .iter()
                .map(|c| {
                    let v = c.data.to_f64();
                    v[50] - v[55]
                })
                .collect();
        },
    )));
    // MCMR: VIS — average feature values grouped by home type.
    rows_out.push(row(measure(
        &mut sys,
        "VIS (MCMR)",
        &features,
        None,
        None,
        |f| {
            let _: Vec<f64> = f
                .columns()
                .iter()
                .map(|c| {
                    let v = c.data.to_f64();
                    v.iter().sum::<f64>() / v.len() as f64
                })
                .collect();
        },
    )));
    // MCMR: CORR — features most correlated with the residual errors.
    {
        let target_col = data.train.column("logerror").unwrap().data.to_f64();
        let n = target_col.len();
        rows_out.push(row(measure(
            &mut sys,
            "CORR (MCMR)",
            &features,
            None,
            None,
            move |f| {
                let _: Vec<f64> = f
                    .columns()
                    .iter()
                    .map(|c| {
                        let v = c.data.to_f64();
                        let m = v.len().min(n);
                        pearson(&v[..m], &target_col[..m])
                    })
                    .collect();
            },
        )));
    }

    print_table(
        &[
            "query",
            "t_read",
            "t_rerun",
            "cost model picks",
            "read speedup",
        ],
        &rows_out,
    );
}

fn part_dnn(part: &str, examples: usize, scale: usize) {
    let dir = tempfile::tempdir().unwrap();
    let (mut sys, ids, data) = dnn_system(
        dir.path(),
        vgg16_cifar(scale),
        examples,
        1,
        mistique_core::CaptureScheme::pool2(),
        StorageStrategy::Dedup,
    );
    let model = &ids[0];
    let n_layers = sys.intermediates_of(model).len();
    let layer = match part {
        "b" => n_layers, // last layer (layer 21 for VGG16)
        "c" => 11.min(n_layers),
        "d" => 1,
        _ => unreachable!(),
    };
    println!("\n== Fig 5{part}: DNN (CIFAR10_VGG16) query times at layer {layer} of {n_layers} ==");
    let interm = format!("{model}.layer{layer}");
    let meta = sys.metadata().intermediate(&interm).unwrap().clone();
    let n_cols = meta.columns.len();

    let mut rows_out = Vec::new();
    let first_col = meta.columns[0].clone();
    // POINTQ: one neuron, one image.
    rows_out.push(row(measure(
        &mut sys,
        "POINTQ (FCFR)",
        &interm,
        Some(&[first_col.as_str()]),
        None,
        |f| {
            let _ = f.columns()[0].data.to_f64()[0];
        },
    )));
    // TOPK: top-10 images by one neuron's activation.
    rows_out.push(row(measure(
        &mut sys,
        "TOPK (FCFR)",
        &interm,
        Some(&[first_col.as_str()]),
        None,
        |f| {
            let mut v: Vec<(usize, f64)> = f.columns()[0]
                .data
                .to_f64()
                .into_iter()
                .enumerate()
                .collect();
            v.sort_by(|a, b| b.1.total_cmp(&a.1));
            v.truncate(10);
        },
    )));
    // COL_DIST over one activation column.
    rows_out.push(row(measure(
        &mut sys,
        "COL_DIST (FCMR)",
        &interm,
        Some(&[first_col.as_str()]),
        None,
        |f| {
            let v = f.columns()[0].data.to_f64();
            let _mean = v.iter().sum::<f64>() / v.len() as f64;
        },
    )));
    // KNN over the full representation.
    rows_out.push(row(measure(
        &mut sys,
        "KNN (MCFR)",
        &interm,
        None,
        None,
        |f| {
            let cols: Vec<Vec<f64>> = f.columns().iter().map(|c| c.data.to_f64()).collect();
            let n = f.n_rows();
            let mut d: Vec<(usize, f64)> = (0..n)
                .map(|i| (i, cols.iter().map(|c| (c[i] - c[0]).powi(2)).sum()))
                .collect();
            d.sort_by(|a, b| a.1.total_cmp(&b.1));
            d.truncate(10);
        },
    )));
    // ROW_DIFF between two images.
    rows_out.push(row(measure(
        &mut sys,
        "ROW_DIFF (MCFR)",
        &interm,
        None,
        None,
        |f| {
            let _: Vec<f64> = f
                .columns()
                .iter()
                .map(|c| {
                    let v = c.data.to_f64();
                    v[0] - v[1]
                })
                .collect();
        },
    )));
    // VIS: per-class average activations.
    {
        let labels = data.labels.clone();
        rows_out.push(row(measure(
            &mut sys,
            "VIS (MCMR)",
            &interm,
            None,
            None,
            move |f| {
                let cols: Vec<Vec<f64>> = f.columns().iter().map(|c| c.data.to_f64()).collect();
                let mut sums = vec![[0.0f64; 10]; cols.len()];
                let mut counts = [0usize; 10];
                for (i, &l) in labels.iter().enumerate().take(f.n_rows()) {
                    counts[l as usize] += 1;
                    for (j, c) in cols.iter().enumerate() {
                        sums[j][l as usize] += c[i];
                    }
                }
            },
        )));
    }
    // SVCCA between this layer and the logits.
    {
        let logits = format!("{model}.layer{n_layers}");
        sys.store_mut().clear_read_cache();
        let (a, t1) = time(|| {
            sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
                .unwrap()
        });
        let (b, t2) = time(|| {
            sys.fetch_with_strategy(&logits, None, None, FetchStrategy::Read)
                .unwrap()
        });
        let ma = mistique_core::diagnostics::frame_to_matrix(&a.frame);
        let mb = mistique_core::diagnostics::frame_to_matrix(&b.frame);
        let (_, tc) = time(|| mistique_linalg::svcca(&ma, &mb, 0.99));
        let (_, t3) = time(|| {
            sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Rerun)
                .unwrap()
        });
        let (_, t4) = time(|| {
            sys.fetch_with_strategy(&logits, None, None, FetchStrategy::Rerun)
                .unwrap()
        });
        rows_out.push(row(QueryOutcome {
            name: format!("SVCCA (MCMR, +{} compute)", fmt_dur(tc)),
            read: t1 + t2 + tc,
            rerun: t3 + t4 + tc,
            chosen: if a.predicted_rerun >= a.predicted_read {
                FetchStrategy::Read
            } else {
                FetchStrategy::Rerun
            },
        }));
    }

    println!(
        "  intermediate: {interm} ({n_cols} stored columns, {} rows)",
        meta.n_rows
    );
    print_table(
        &[
            "query",
            "t_read",
            "t_rerun",
            "cost model picks",
            "read speedup",
        ],
        &rows_out,
    );
}

fn main() {
    let args = Args::parse();
    let part = args.string("part", "all");
    let rows = args.usize("rows", DEFAULT_ZILLOW_ROWS);
    let examples = args.usize("examples", DEFAULT_DNN_EXAMPLES);
    let scale = args.usize("scale", DEFAULT_VGG_SCALE);

    println!("# Figure 5: end-to-end diagnostic query times (read vs re-run)");
    println!("# paper: TRAD read wins 2.5x-390x; DNN L21 60-210x, L11 2-42x, L1 re-run can win");
    match part.as_str() {
        "a" => part_a(rows),
        "b" | "c" | "d" => part_dnn(&part, examples, scale),
        _ => {
            part_a(rows);
            for p in ["b", "c", "d"] {
                part_dnn(p, examples, scale);
            }
        }
    }
}
