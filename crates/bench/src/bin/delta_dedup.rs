//! Cross-checkpoint delta storage: a multi-epoch DNN checkpoint sweep at
//! the store level. Each epoch's layer tensors are a small random walk away
//! from the previous epoch's — the near-duplicate regime MISTIQUE's DNN
//! workload lives in. The sweep stores every checkpoint twice, once with
//! base+delta frames enabled and once without, compares physical bytes, and
//! proves the delta store serves every chunk bit-identically through the
//! batch read path at read_parallelism 1, 2, 4, and 0 (auto).
//!
//! Flags: `--layers N --values N --epochs N --perturb P`

use std::time::Duration;

use mistique_bench::*;
use mistique_dataframe::{ColumnChunk, ColumnData};
use mistique_store::{ChunkKey, DataStore, DataStoreConfig, PlacementPolicy};

/// Deterministic LCG so every run sees the same tensors.
fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64) / ((1u64 << 53) as f64)
}

fn store_config(delta: bool) -> DataStoreConfig {
    DataStoreConfig {
        policy: PlacementPolicy::ByIntermediate,
        delta_enabled: delta,
        ..DataStoreConfig::default()
    }
}

fn main() {
    let args = Args::parse();
    let layers = args.usize("layers", 6);
    let values = args.usize("values", 16_384);
    let epochs = args.usize("epochs", 8);
    let perturb = args.f64("perturb", 0.05);

    println!(
        "# Cross-checkpoint delta dedup: {layers} layers x {values} f64 x {epochs} epochs, \
         {:.0}% of values drift per epoch",
        perturb * 100.0
    );

    // The checkpoint sweep: layer l of epoch e. Value ranges are offset per
    // layer so MinHash only ever pairs a layer with its own history.
    let mut checkpoints: Vec<Vec<Vec<f64>>> = Vec::with_capacity(epochs);
    let mut seed = 0x5eed_0001u64;
    let mut tensors: Vec<Vec<f64>> = (0..layers)
        .map(|l| {
            (0..values)
                .map(|_| (l * 10) as f64 + lcg(&mut seed))
                .collect()
        })
        .collect();
    checkpoints.push(tensors.clone());
    for _ in 1..epochs {
        for t in &mut tensors {
            for v in t.iter_mut() {
                if lcg(&mut seed) < perturb {
                    *v += 0.01 * (lcg(&mut seed) - 0.5);
                }
            }
        }
        checkpoints.push(tensors.clone());
    }

    let keys_and_chunks: Vec<(ChunkKey, ColumnChunk)> = checkpoints
        .iter()
        .enumerate()
        .flat_map(|(e, tensors)| {
            tensors.iter().enumerate().map(move |(l, t)| {
                (
                    ChunkKey::new(format!("epoch{e}.layer{l}"), "w", 0),
                    ColumnChunk::new(ColumnData::F64(t.clone())),
                )
            })
        })
        .collect();

    // Store the sweep twice: delta frames on and off.
    let run = |delta: bool| -> (DataStore, tempfile::TempDir, u64, Duration) {
        let dir = tempfile::tempdir().unwrap();
        let mut ds = DataStore::open(dir.path(), store_config(delta)).unwrap();
        let ((), t) = time(|| {
            for (key, chunk) in &keys_and_chunks {
                ds.put_chunk(key.clone(), chunk).unwrap();
            }
            ds.flush().unwrap();
        });
        let physical = ds.physical_bytes().unwrap();
        (ds, dir, physical, t)
    };
    let (mut ds_on, _dir_on, bytes_on, t_on) = run(true);
    let (_ds_off, _dir_off, bytes_off, t_off) = run(false);

    let stats = ds_on.stats();
    let ratio = bytes_off as f64 / bytes_on.max(1) as f64;
    print_table(
        &[
            "store",
            "physical bytes",
            "ingest",
            "delta puts",
            "bytes saved",
        ],
        &[
            vec![
                "delta off".into(),
                fmt_bytes(bytes_off),
                fmt_dur(t_off),
                "-".into(),
                "-".into(),
            ],
            vec![
                "delta on".into(),
                fmt_bytes(bytes_on),
                fmt_dur(t_on),
                stats.delta_puts.to_string(),
                fmt_bytes(stats.delta_bytes_saved),
            ],
        ],
    );
    println!("\n  stored-byte reduction: {ratio:.2}x");
    assert!(
        stats.delta_puts > 0,
        "the sweep must exercise the delta put path"
    );
    assert!(
        ratio >= 1.5,
        "base+delta must cut stored bytes at least 1.5x on a checkpoint sweep, got {ratio:.2}x"
    );

    // Bit-identity through the batch read path at every parallelism level.
    let keys: Vec<ChunkKey> = keys_and_chunks.iter().map(|(k, _)| k.clone()).collect();
    let expected: Vec<Vec<u8>> = keys_and_chunks.iter().map(|(_, c)| c.to_bytes()).collect();
    let obs = mistique_core::Obs::new();
    for parallelism in [1usize, 2, 4, 0] {
        ds_on.clear_read_cache();
        let (got, t) = time(|| ds_on.get_chunk_bytes_batch(&keys, parallelism).unwrap());
        assert_eq!(got.len(), expected.len());
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                g, e,
                "key {:?} diverged at parallelism {parallelism}",
                keys[i]
            );
        }
        println!(
            "  cold batch read, parallelism {parallelism}: {} ({} chunks, bit-identical)",
            fmt_dur(t),
            keys.len()
        );
        obs.gauge(&format!("bench.delta_dedup.read_us_p{parallelism}"))
            .set(t.as_secs_f64() * 1e6);
    }
    let rehydrations = ds_on.obs().counter("store.delta.rehydrations").get();
    assert!(
        rehydrations >= stats.delta_puts,
        "every delta chunk must rehydrate through its frame on cold reads"
    );

    obs.gauge("bench.delta_dedup.layers").set_u64(layers as u64);
    obs.gauge("bench.delta_dedup.epochs").set_u64(epochs as u64);
    obs.gauge("bench.delta_dedup.values").set_u64(values as u64);
    obs.gauge("bench.delta_dedup.bytes_off").set_u64(bytes_off);
    obs.gauge("bench.delta_dedup.bytes_on").set_u64(bytes_on);
    obs.gauge("bench.delta_dedup.ratio").set(ratio);
    obs.gauge("bench.delta_dedup.delta_puts")
        .set_u64(stats.delta_puts);
    obs.gauge("bench.delta_dedup.bytes_saved")
        .set_u64(stats.delta_bytes_saved);
    obs.gauge("bench.delta_dedup.rehydrations")
        .set_u64(rehydrations);
    write_obs_snapshot("delta_dedup", &obs);
}
