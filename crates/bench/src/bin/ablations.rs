//! Ablations of MISTIQUE's design choices (the sweeps DESIGN.md calls out,
//! beyond the paper's own figures).
//!
//! 1. KBIT_QT bit-width k ∈ {1..8}: storage vs diagnostic fidelity.
//! 2. POOL_QT σ ∈ {1, 2, 4, 8, 32}: storage vs read time vs KNN overlap.
//! 3. InMemoryStore budget: eviction pressure vs logging time.
//! 4. RowBlock size: point-read vs scan trade-off.
//!
//! Flags: `--examples N --scale N --rows N`

use std::sync::Arc;

use mistique_bench::*;
use mistique_core::diagnostics::frame_to_matrix;
use mistique_core::{
    CaptureScheme, FetchStrategy, Mistique, MistiqueConfig, StorageStrategy, ValueScheme,
};
use mistique_linalg::Matrix;
use mistique_nn::vgg16_cifar;
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;
use mistique_quantize::KbitQuantizer;
use mistique_store::DataStoreConfig;

fn knn_ids(m: &Matrix, query: usize, k: usize) -> Vec<usize> {
    let mut d: Vec<(usize, f64)> = (0..m.rows())
        .filter(|&i| i != query)
        .map(|i| {
            let dist: f64 = m
                .row(i)
                .iter()
                .zip(m.row(query))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            (i, dist)
        })
        .collect();
    d.sort_by(|a, b| a.1.total_cmp(&b.1));
    d.truncate(k);
    d.into_iter().map(|(i, _)| i).collect()
}

fn overlap(a: &[usize], b: &[usize]) -> f64 {
    a.iter().filter(|x| b.contains(x)).count() as f64 / a.len().max(1) as f64
}

fn kbit_sweep(examples: usize, scale: usize) {
    println!("\n== ablation 1: KBIT_QT bit width (layer 11, {examples} examples) ==");
    // Ground truth from a full-precision system.
    let dir = tempfile::tempdir().unwrap();
    let (mut sys, ids, _) = dnn_system(
        dir.path(),
        vgg16_cifar(scale),
        examples,
        1,
        CaptureScheme {
            value: ValueScheme::Full,
            pool_sigma: None,
        },
        StorageStrategy::Dedup,
    );
    let interm = format!("{}.layer11", ids[0]);
    let full = frame_to_matrix(
        &sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
            .unwrap()
            .frame,
    );
    let truth = knn_ids(&full, 0, 20);
    let all: Vec<f32> = full.data().iter().map(|&v| v as f32).collect();

    let mut rows = Vec::new();
    for bits in [1u32, 2, 3, 4, 8] {
        let q = KbitQuantizer::fit(&all, bits);
        let recon = Matrix::from_vec(
            full.rows(),
            full.cols(),
            full.data()
                .iter()
                .map(|&v| q.value_of(q.code_of(v as f32)) as f64)
                .collect(),
        );
        // Storage model: bits per value + quantizer table.
        let stored = (full.data().len() * bits as usize).div_ceil(8) + q.to_bytes().len();
        let raw = full.data().len() * 4;
        rows.push(vec![
            format!("{bits}"),
            format!("{:.1}x", raw as f64 / stored as f64),
            format!("{:.3}", overlap(&knn_ids(&recon, 0, 20), &truth)),
            format!("{:.4}", full.max_abs_diff(&recon)),
        ]);
    }
    print_table(
        &["k (bits)", "reduction vs f32", "KNN overlap", "max abs err"],
        &rows,
    );
}

fn pool_sweep(examples: usize, scale: usize) {
    println!("\n== ablation 2: POOL_QT sigma (whole model, {examples} examples) ==");
    let mut rows = Vec::new();
    for sigma in [1usize, 2, 4, 8, 32] {
        let capture = if sigma == 1 {
            CaptureScheme {
                value: ValueScheme::Full,
                pool_sigma: None,
            }
        } else {
            CaptureScheme {
                value: ValueScheme::Full,
                pool_sigma: Some(sigma),
            }
        };
        let dir = tempfile::tempdir().unwrap();
        let (mut sys, ids, _) = dnn_system(
            dir.path(),
            vgg16_cifar(scale),
            examples,
            1,
            capture,
            StorageStrategy::StoreAll,
        );
        let interm = format!("{}.layer6", ids[0]);
        sys.store_mut().clear_read_cache();
        let (_, t_read) = time(|| {
            sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
                .unwrap()
        });
        rows.push(vec![
            format!("{sigma}"),
            fmt_bytes(sys.store().disk_bytes().unwrap()),
            fmt_dur(t_read),
            format!(
                "{}",
                sys.metadata().intermediate(&interm).unwrap().columns.len()
            ),
        ]);
    }
    print_table(
        &["sigma", "total storage", "layer6 read", "layer6 columns"],
        &rows,
    );
}

fn buffer_pool_sweep(rows_n: usize) {
    println!("\n== ablation 3: InMemoryStore budget (2 Zillow pipelines, {rows_n} rows) ==");
    let data = Arc::new(ZillowData::generate(rows_n, 42));
    let mut rows = Vec::new();
    for budget in [64usize << 10, 1 << 20, 8 << 20, 64 << 20] {
        let dir = tempfile::tempdir().unwrap();
        let config = MistiqueConfig {
            datastore: DataStoreConfig {
                mem_capacity: budget,
                ..DataStoreConfig::default()
            },
            ..MistiqueConfig::default()
        };
        let mut sys = Mistique::open(dir.path(), config).unwrap();
        let (_, t) = time(|| {
            for p in zillow_pipelines().into_iter().take(2) {
                let id = sys.register_trad(p, Arc::clone(&data)).unwrap();
                sys.log_intermediates(&id).unwrap();
            }
        });
        // Bytes written *before* the final flush = eviction traffic.
        let evicted_bytes = sys.store().bytes_written();
        sys.flush().unwrap();
        rows.push(vec![
            fmt_bytes(budget as u64),
            fmt_dur(t),
            fmt_bytes(evicted_bytes),
            fmt_bytes(sys.store().bytes_written()),
        ]);
    }
    print_table(
        &[
            "pool budget",
            "log time",
            "evicted during log",
            "total written",
        ],
        &rows,
    );
}

fn row_block_sweep(rows_n: usize) {
    println!("\n== ablation 4: RowBlock size (point read vs full scan) ==");
    let data = Arc::new(ZillowData::generate(rows_n, 42));
    let mut rows = Vec::new();
    for rbs in [100usize, 1000, 4000] {
        let dir = tempfile::tempdir().unwrap();
        let config = MistiqueConfig {
            row_block_size: rbs,
            ..MistiqueConfig::default()
        };
        let mut sys = Mistique::open(dir.path(), config).unwrap();
        let id = sys
            .register_trad(zillow_pipelines().remove(0), Arc::clone(&data))
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        sys.flush().unwrap();
        let interm = sys.intermediates_of(&id)[0].clone();

        sys.store_mut().clear_read_cache();
        let (_, t_point) = time(|| {
            sys.get_rows(&interm, &[rows_n - 1], Some(&["sqft"]))
                .unwrap()
        });
        sys.store_mut().clear_read_cache();
        let (_, t_scan) = time(|| {
            sys.fetch_with_strategy(&interm, Some(&["sqft"]), None, FetchStrategy::Read)
                .unwrap()
        });
        rows.push(vec![format!("{rbs}"), fmt_dur(t_point), fmt_dur(t_scan)]);
    }
    print_table(
        &["RowBlock rows", "point read (1 row)", "full column scan"],
        &rows,
    );
    println!("  (small blocks: cheap point reads, more chunks; big blocks: the reverse)");
}

fn main() {
    let args = Args::parse();
    let examples = args.usize("examples", 128);
    let scale = args.usize("scale", 16);
    let rows_n = args.usize("rows", 2000);

    println!("# Ablations of MISTIQUE design choices (see DESIGN.md Sec 6)");
    kbit_sweep(examples, scale);
    pool_sweep(examples, scale);
    buffer_pool_sweep(rows_n);
    row_block_sweep(rows_n);
}
