//! Figure 11 + Sec 8.6: logging (pipeline) overhead.
//!
//! - Default: TRAD pipelines P1, P5, P9 run under NONE / ADAPTIVE / DEDUP /
//!   STORE_ALL with synchronous writes; the paper finds runtime directly
//!   correlated with bytes written — STORE_ALL worst, ADAPTIVE ≈ DEDUP low.
//! - `--dnn`: CIFAR10_VGG16 single run; the paper reports 19 s without
//!   logging, 252 s f32 / 151 s f16 / 379 s 8BIT (quantile cost) /
//!   20 s pool(32) / 38 s pool(4) / 56 s pool(2).
//!
//! Flags: `--rows N --examples N --scale N --dnn`

use std::sync::Arc;
use std::time::Instant;

use mistique_bench::*;
use mistique_core::{CaptureScheme, Mistique, MistiqueConfig, Obs, StorageStrategy, ValueScheme};
use mistique_nn::{vgg16_cifar, CifarLike, Model};
use mistique_pipeline::templates::{template_stages, template_variants};
use mistique_pipeline::{Pipeline, ZillowData};

fn trad(rows: usize, obs: &Obs) {
    println!("\n== Fig 11: TRAD pipeline runtime incl. synchronous logging ==");
    let data = Arc::new(ZillowData::generate(rows, 42));
    let strategies: Vec<(&str, StorageStrategy)> = vec![
        ("NONE", StorageStrategy::NoStore),
        (
            "ADAPTIVE",
            StorageStrategy::Adaptive {
                gamma_min: 0.5 / 1024.0,
            },
        ),
        ("DEDUP", StorageStrategy::Dedup),
        ("STORE_ALL", StorageStrategy::StoreAll),
    ];
    let mut rows_out = Vec::new();
    for template in [1usize, 5, 9] {
        for (name, storage) in &strategies {
            let dir = tempfile::tempdir().unwrap();
            // All strategy runs report into one shared registry, so the
            // snapshot aggregates the whole figure's workload.
            let mut sys = Mistique::open_with_obs(
                dir.path(),
                MistiqueConfig {
                    storage: *storage,
                    ..MistiqueConfig::default()
                },
                obs.clone(),
            )
            .unwrap();
            let pipeline = Pipeline::new(
                format!("P{template}"),
                template_stages(template),
                template_variants(template).remove(0),
                42,
            );
            let n_stages = pipeline.len();
            let id = sys.register_trad(pipeline, Arc::clone(&data)).unwrap();
            let t0 = Instant::now();
            sys.log_intermediates(&id).unwrap();
            sys.flush().unwrap();
            let total = t0.elapsed();
            rows_out.push(vec![
                format!("P{template} ({n_stages} stages)"),
                name.to_string(),
                fmt_dur(total),
                fmt_bytes(sys.store().bytes_written()),
            ]);
        }
    }
    print_table(
        &["pipeline", "strategy", "run+log time", "bytes written"],
        &rows_out,
    );
}

fn dnn(examples: usize, scale: usize, obs: &Obs) {
    println!("\n== Sec 8.6: CIFAR10_VGG16 logging overhead by scheme ==");
    let data = Arc::new(CifarLike::generate(examples, 10, 7));
    let arch = Arc::new(vgg16_cifar(scale));

    // Baseline: run the model without any logging.
    let model = Model::build(&arch, 11, 0);
    let t0 = Instant::now();
    let _ = model.forward_to_batched(&data.images, model.n_layers() - 1, 1000);
    let no_log = t0.elapsed();

    let schemes: Vec<(&str, CaptureScheme)> = vec![
        (
            "f32 (STORE_ALL)",
            CaptureScheme {
                value: ValueScheme::Full,
                pool_sigma: None,
            },
        ),
        (
            "f16 (LP_QT)",
            CaptureScheme {
                value: ValueScheme::Lp,
                pool_sigma: None,
            },
        ),
        (
            "8BIT_QT",
            CaptureScheme {
                value: ValueScheme::Kbit { bits: 8 },
                pool_sigma: None,
            },
        ),
        ("pool(2)", CaptureScheme::pool2()),
        (
            "pool(4)",
            CaptureScheme {
                value: ValueScheme::Full,
                pool_sigma: Some(4),
            },
        ),
        (
            "pool(32)",
            CaptureScheme {
                value: ValueScheme::Full,
                pool_sigma: Some(32),
            },
        ),
    ];
    let mut rows_out = vec![vec![
        "no logging".to_string(),
        fmt_dur(no_log),
        "1.0x".to_string(),
        "-".to_string(),
    ]];
    for (name, capture) in schemes {
        let dir = tempfile::tempdir().unwrap();
        let mut sys = Mistique::open_with_obs(
            dir.path(),
            MistiqueConfig {
                storage: StorageStrategy::StoreAll,
                dnn_capture: capture,
                ..MistiqueConfig::default()
            },
            obs.clone(),
        )
        .unwrap();
        let id = sys
            .register_dnn(Arc::clone(&arch), 11, 0, Arc::clone(&data), 1000)
            .unwrap();
        let t0 = Instant::now();
        sys.log_intermediates(&id).unwrap();
        sys.flush().unwrap();
        let total = t0.elapsed();
        rows_out.push(vec![
            name.to_string(),
            fmt_dur(total),
            format!("{:.1}x", total.as_secs_f64() / no_log.as_secs_f64()),
            fmt_bytes(sys.store().bytes_written()),
        ]);
    }
    print_table(
        &["scheme", "run+log time", "vs no logging", "bytes written"],
        &rows_out,
    );
}

fn main() {
    let args = Args::parse();
    println!("# Figure 11 / Sec 8.6: logging overhead");
    println!(
        "# paper: overhead correlates with bytes written; 8BIT pays extra for quantile fitting;"
    );
    println!("#        pool(32) is nearly free");
    let obs = Obs::new();
    if args.flag("dnn") {
        dnn(
            args.usize("examples", DEFAULT_DNN_EXAMPLES),
            args.usize("scale", DEFAULT_VGG_SCALE),
            &obs,
        );
    } else {
        trad(args.usize("rows", DEFAULT_ZILLOW_ROWS), &obs);
        dnn(
            args.usize("examples", DEFAULT_DNN_EXAMPLES),
            args.usize("scale", DEFAULT_VGG_SCALE),
            &obs,
        );
    }
    write_obs_snapshot("fig11", &obs);
}
