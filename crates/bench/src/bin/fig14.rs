//! Figure 14 (Appendix C.2): column-compression microbenchmark.
//!
//! Generate a `rows x cols` f32 matrix whose columns share a controlled
//! fraction of identical values (similarity 0 / 0.5 / 1.0), then compare the
//! compressed footprint when similar columns are stored *together* in one
//! partition vs *scattered* across partitions. The paper's point: co-locating
//! similar values is what turns similarity into compression wins.
//!
//! Also sweeps the LSH threshold τ (an ablation DESIGN.md calls out) to show
//! the clustering-vs-partition-count trade-off.
//!
//! Flags: `--rows N --cols N`

use mistique_bench::*;
use mistique_compress::compress_auto;
use mistique_dataframe::{ColumnChunk, ColumnData};
use mistique_store::{ChunkKey, DataStore, DataStoreConfig, PlacementPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build `cols` columns of `rows` f32 values where `similarity` is the
/// fraction of each column copied from a shared base column.
fn build_columns(rows: usize, cols: usize, similarity: f64, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<f32> = (0..rows).map(|_| rng.gen_range(-100.0..100.0)).collect();
    (0..cols)
        .map(|_| {
            base.iter()
                .map(|&b| {
                    if rng.gen_bool(similarity) {
                        b
                    } else {
                        rng.gen_range(-100.0..100.0)
                    }
                })
                .collect()
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let rows = args.usize("rows", 20_000);
    let cols = args.usize("cols", 100);

    println!("# Figure 14: column compression vs similarity ({rows} x {cols} f32 matrix)");
    println!("# paper: storage shrinks as column similarity rises, when similar columns co-locate");

    // Columns are laid out the way the DataStore stores them: split into
    // 1000-row ColumnChunks (~4 KiB). "Co-located" orders the chunks so
    // that the corresponding chunks of similar columns sit next to each
    // other inside one partition buffer (what LSH placement achieves) —
    // within the LZSS window. "Scattered" compresses each chunk alone.
    const BLOCK_ROWS: usize = 1000;
    let mut rows_out = Vec::new();
    for similarity in [0.0, 0.5, 1.0] {
        let columns = build_columns(rows, cols, similarity, 3);
        let raw: usize = columns.iter().map(|c| c.len() * 4).sum();
        let n_blocks = rows.div_ceil(BLOCK_ROWS);

        let chunk_bytes = |col: &[f32], b: usize| -> Vec<u8> {
            let end = ((b + 1) * BLOCK_ROWS).min(col.len());
            let mut buf = Vec::with_capacity((end - b * BLOCK_ROWS) * 4);
            for v in &col[b * BLOCK_ROWS..end] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            buf
        };

        // Co-located: block-major order (same block of every column adjacent).
        let mut together = Vec::with_capacity(raw);
        for b in 0..n_blocks {
            for c in &columns {
                together.extend_from_slice(&chunk_bytes(c, b));
            }
        }
        let colocated = compress_auto(&together).len();

        // Scattered: every chunk compressed alone (no cross-chunk window).
        let mut scattered = 0usize;
        for c in &columns {
            for b in 0..n_blocks {
                scattered += compress_auto(&chunk_bytes(c, b)).len();
            }
        }

        rows_out.push(vec![
            format!("{similarity:.1}"),
            fmt_bytes(raw as u64),
            fmt_bytes(colocated as u64),
            fmt_bytes(scattered as u64),
            format!("{:.2}x", scattered as f64 / colocated as f64),
        ]);
    }
    print_table(
        &[
            "col similarity",
            "raw",
            "co-located",
            "scattered",
            "co-location gain",
        ],
        &rows_out,
    );

    // Ablation: LSH threshold τ sweep on the similarity-0.5 workload.
    println!("\n== ablation: LSH similarity threshold τ (similarity 0.9 columns) ==");
    let columns = build_columns(rows / 4, cols, 0.9, 5);
    let mut rows_out = Vec::new();
    for tau in [0.2, 0.4, 0.6, 0.8, 0.95] {
        let dir = tempfile::tempdir().unwrap();
        let config = DataStoreConfig {
            policy: PlacementPolicy::BySimilarity { tau },
            ..DataStoreConfig::default()
        };
        let mut store = DataStore::open(dir.path(), config).unwrap();
        for (j, c) in columns.iter().enumerate() {
            let chunk = ColumnChunk::new(ColumnData::F32(c.clone()));
            store
                .put_chunk(ChunkKey::new("m.i", format!("c{j}"), 0), &chunk)
                .unwrap();
        }
        store.flush().unwrap();
        let stats = store.stats();
        rows_out.push(vec![
            format!("{tau:.2}"),
            format!("{}", stats.partitions_created),
            format!("{}", stats.similarity_placements),
            fmt_bytes(store.disk_bytes().unwrap()),
        ]);
    }
    print_table(
        &[
            "tau",
            "partitions",
            "similarity placements",
            "compressed bytes",
        ],
        &rows_out,
    );
}
