#!/usr/bin/env bash
# CI perf gate: run the read_parallel bench at the committed baseline's row
# count and compare cold-read throughput against the checked-in snapshot
# (BENCH_read_parallel.json at the repo root). Fails when throughput drops
# more than 20%. Skips cleanly when no baseline is committed — run the bench
# once and commit its snapshot to arm the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_read_parallel.json
BUDGET=0.8 # new throughput must be >= BUDGET * baseline throughput

# Pull one numeric gauge out of a bench snapshot without a JSON tool: split
# on commas/braces, find the quoted key, strip everything up to the colon.
# Missing keys print nothing (the `|| true` keeps grep's miss from tripping
# `set -o pipefail` — callers probe optional keys like the host fingerprint).
val() { # file key
  tr ',{' '\n\n' <"$1" | grep -F "\"$2\":" | head -1 | sed 's/.*://; s/[}"]//g' || true
}

# Reclaim-throughput smoke: always runs (no baseline needed). The bin
# itself asserts the pass lands under budget; the gate just checks the
# pass finished and reported a positive reclaim rate.
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
echo "== reclaim bench smoke (rows=2000, 2 pipelines) =="
MISTIQUE_BENCH_DIR="$smoke" cargo run --release -q -p mistique-bench --bin reclaim -- \
  --rows 2000 --pipelines 2 --reps 1
rate=$(val "$smoke/BENCH_reclaim.json" bench.reclaim.bytes_per_sec)
awk -v rate="$rate" 'BEGIN {
  if (rate + 0 <= 0) { print "FAIL: reclaim pass reported no reclaimed bytes"; exit 1 }
  printf "OK: reclaim pass sustained %.0f B/s\n", rate
}'

# Indexed top-k smoke: always runs (no baseline needed). The bin asserts
# indexed and scan answers are bit-identical; the gate checks the
# max-activation list actually beat the column scan. At any scale the list
# answers from memory while the scan decodes the column, so a speedup at or
# below 1x means the indexed path silently fell back to scanning.
echo "== topk_index bench smoke (examples=2000) =="
MISTIQUE_BENCH_DIR="$smoke" cargo run --release -q -p mistique-bench --bin topk_index -- \
  --examples 2000 --reps 3
topk_speedup=$(val "$smoke/BENCH_topk_index.json" bench.topk_index.topk_speedup)
awk -v s="$topk_speedup" 'BEGIN {
  if (s + 0 <= 1) { print "FAIL: indexed top-k did not beat the column scan"; exit 1 }
  printf "OK: indexed top-k %.1fx over the scan\n", s
}'

# Delta-dedup smoke: always runs (no baseline needed). The bin asserts the
# sweep's reads come back bit-identical at read_parallelism 1/2/4/0 and that
# the reduction clears 1.5x; the gate re-checks the snapshot so a bin that
# silently stopped asserting still fails here.
echo "== delta_dedup bench smoke (4 layers x 4096 values x 6 epochs) =="
MISTIQUE_BENCH_DIR="$smoke" cargo run --release -q -p mistique-bench --bin delta_dedup -- \
  --layers 4 --values 4096 --epochs 6
delta_ratio=$(val "$smoke/BENCH_delta_dedup.json" bench.delta_dedup.ratio)
awk -v r="$delta_ratio" 'BEGIN {
  if (r + 0 <= 1) { print "FAIL: base+delta frames did not reduce stored bytes"; exit 1 }
  printf "OK: delta store %.2fx smaller than raw\n", r
}'

# Capture/replay smoke: always runs (no baseline needed). `demo` captures a
# mixed TRAD/DNN workload into the audit journal; `replay --differential`
# re-executes it at read_parallelism 1/2/4/0 and exits nonzero unless every
# leg produces bit-identical answers and identical plan choices. `--bench`
# writes BENCH_replay.json with the measured capture overhead.
echo "== audit capture/replay differential smoke =="
# The journal is flushed before the final persist, so a persist failure
# (e.g. offline verification environments without a real serde_json) still
# leaves a replayable capture; the differential verdict below is the gate.
cargo run --release -q -p mistique-core --bin mistique -- demo "$smoke/demo_store" \
  || echo "note: demo exited nonzero (persist unavailable?); replaying the captured journal anyway"
cargo run --release -q -p mistique-core --bin mistique -- replay "$smoke/demo_store" \
  --differential --bench "$smoke/BENCH_replay.json"
consistent=$(val "$smoke/BENCH_replay.json" differential_consistent)
overhead=$(val "$smoke/BENCH_replay.json" capture_overhead_pct)
awk -v c="$consistent" -v o="$overhead" 'BEGIN {
  if (c + 0 != 1) { print "FAIL: differential replay diverged"; exit 1 }
  printf "OK: differential replay consistent; capture overhead %.2f%%\n", o
  if (o + 0 > 5) printf "WARN: capture overhead %.2f%% exceeds the 5%% budget on this host\n", o
}'

if [[ ! -f "$BASELINE" ]]; then
  echo "no committed $BASELINE — skipping perf gate"
  exit 0
fi

base_rows=$(val "$BASELINE" bench.read_parallel.rows)
base_ms=$(val "$BASELINE" bench.read_parallel.serial_ms)
if [[ -z "$base_rows" || -z "$base_ms" ]]; then
  echo "malformed $BASELINE (missing rows/serial_ms gauges) — skipping perf gate"
  exit 0
fi

# Host fingerprint: a baseline captured on a machine with a different core
# count is not comparable (cold-read wall clock tracks the memory subsystem
# and CPU generation, which core count proxies). Skip rather than flag a
# phantom regression. Older baselines carried the count only under the
# bench-specific gauge, so try both names.
host_cpus=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo "")
base_cpus=$(val "$BASELINE" host.cpus)
[[ -z "$base_cpus" ]] && base_cpus=$(val "$BASELINE" bench.read_parallel.host_cpus)
if [[ -z "$base_cpus" ]]; then
  echo "baseline carries no host.cpus fingerprint — skipping perf gate"
  exit 0
fi
if [[ -z "$host_cpus" || "$base_cpus" != "$host_cpus" ]]; then
  echo "host fingerprint mismatch (baseline: ${base_cpus} cpus, here: ${host_cpus:-unknown}) — skipping perf gate"
  exit 0
fi

out=$(mktemp -d)
trap 'rm -rf "$out" "$smoke"' EXIT

echo "== read_parallel bench (rows=$base_rows, reps=3, workers=4) =="
MISTIQUE_BENCH_DIR="$out" cargo run --release -q -p mistique-bench --bin read_parallel -- \
  --rows "$base_rows" --reps 3 --workers 4

new_ms=$(val "$out/BENCH_read_parallel.json" bench.read_parallel.serial_ms)

# Config fingerprint: snapshots stamp a hash of every engine knob that
# shapes measured behaviour (block size, storage strategy, placement policy,
# read fan-out, …). A baseline captured under a different configuration is
# not comparable — refuse the comparison rather than flag a phantom
# regression (or mask a real one). Baselines older than the fingerprint
# gauge gate on the host check alone.
base_cfg=$(val "$BASELINE" config.fingerprint)
new_cfg=$(val "$out/BENCH_read_parallel.json" config.fingerprint)
if [[ -n "$base_cfg" && -n "$new_cfg" && "$base_cfg" != "$new_cfg" ]]; then
  echo "config fingerprint mismatch (baseline: ${base_cfg}, here: ${new_cfg}) — refusing to compare perf across configurations"
  exit 0
fi

# Gate on the serial cold read: it is the stable number across CI hosts
# (parallel speedup depends on the runner's core count).
awk -v rows="$base_rows" -v base_ms="$base_ms" -v new_ms="$new_ms" -v budget="$BUDGET" 'BEGIN {
  base_tp = rows / base_ms
  new_tp  = rows / new_ms
  ratio   = new_tp / base_tp
  printf "cold-read throughput: baseline %.0f rows/ms (%.2f ms), current %.0f rows/ms (%.2f ms), ratio %.2f\n",
         base_tp, base_ms, new_tp, new_ms, ratio
  if (ratio < budget) {
    printf "FAIL: cold-read throughput regressed more than %.0f%% vs the committed baseline\n", (1 - budget) * 100
    exit 1
  }
  printf "OK: within the %.0f%% regression budget\n", (1 - budget) * 100
}'

# Parallel-speedup gate: on a multi-core host the parallel cold read must
# not lose to the serial path. The adaptive fan-out clamps workers to the
# host CPUs and batch size, so any speedup below 0.95 on a host with more
# than one core is a real regression, not scheduling noise.
new_speedup=$(val "$out/BENCH_read_parallel.json" bench.read_parallel.speedup)
awk -v cpus="${host_cpus:-1}" -v speedup="$new_speedup" 'BEGIN {
  if (cpus + 0 <= 1) {
    print "single-CPU host: parallel-speedup gate not applicable"
    exit 0
  }
  if (speedup + 0 <= 0) {
    print "FAIL: read_parallel snapshot carries no bench.read_parallel.speedup gauge"
    exit 1
  }
  printf "parallel speedup on %d cpus: %.2fx\n", cpus, speedup
  if (speedup < 0.95) {
    print "FAIL: parallel cold read is slower than serial (speedup < 0.95) on a multi-core host"
    exit 1
  }
  print "OK: parallel read path at least matches serial"
}'
