#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, build, and the full test suite.
# Run from anywhere; everything executes at the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

# The reliability suites are named explicitly so a target that silently
# drops out of the workspace (e.g. a broken [[test]] path entry) fails the
# gate instead of being skipped.
echo "== reliability suites =="
cargo test -q -p mistique-core --test failure_injection
cargo test -q -p mistique-core --test crash_safety
cargo test -q -p mistique-core --test proptest_system
cargo test -q -p mistique-core --test observability
cargo test -q -p mistique-core --test explain
cargo test -q -p mistique-core --test reclaim
cargo test -q -p mistique-core --test timeline
cargo test -q -p mistique-core --test telemetry_crash
cargo test -q -p mistique-core --test obs_coverage
cargo test -q -p mistique-core --test parallel_read
cargo test -q -p mistique-core --test index_equivalence
cargo test -q -p mistique-core --test index_crash
cargo test -q -p mistique-core --test audit_crash
cargo test -q -p mistique-core --test delta_crash
cargo test -q -p mistique-core --test query_cache
cargo test -q -p mistique-index
cargo test -q -p mistique-obs
cargo test -q -p mistique-store --test lru_model
cargo test -q -p mistique-store --test compaction
cargo test -q -p mistique-compress --test truncation_fuzz
cargo test -q -p mistique-compress --test proptest_roundtrip
cargo test -q -p mistique-compress --test lzss_window_fuzz
cargo test -q -p mistique-nn --test proptest_layers

echo "all checks passed"
