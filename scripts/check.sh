#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, build, and the full test suite.
# Run from anywhere; everything executes at the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "all checks passed"
