//! Quickstart: log a pipeline's intermediates and query them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use mistique_core::{Mistique, MistiqueConfig};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Open a MISTIQUE store.
    let dir = tempfile::tempdir()?;
    let mut mistique = Mistique::open(dir.path(), MistiqueConfig::default())?;

    // 2. Register a model: one of the Zillow price-error pipelines over a
    //    synthetic 5 000-home dataset.
    let data = Arc::new(ZillowData::generate(5_000, 42));
    let pipeline = zillow_pipelines().remove(0);
    println!("pipeline {} has {} stages", pipeline.id, pipeline.len());
    let model_id = mistique.register_trad(pipeline, data)?;

    // 3. Log every stage's intermediate (the paper's `log_intermediates`).
    mistique.log_intermediates(&model_id)?;
    let stats = mistique.store().stats();
    println!(
        "logged {} unique chunks ({} submitted bytes, {} stored, {} dedup hits)",
        stats.chunks_stored, stats.logical_bytes, stats.unique_bytes, stats.dedup_hits
    );

    // 4. Query an intermediate: MISTIQUE picks read-vs-rerun by cost model.
    let interms = mistique.intermediates_of(&model_id);
    println!("\nintermediates:");
    for i in &interms {
        println!("  {i}");
    }

    let predictions = interms.last().unwrap();
    let result = mistique.get_intermediate(predictions, Some(&["pred"]), None)?;
    println!(
        "\nfetched {} predictions via {:?} in {:?} (cost model predicted read {:.2e}s / rerun {:.2e}s)",
        result.frame.n_rows(),
        result.strategy,
        result.fetch_time,
        result.predicted_read,
        result.predicted_rerun,
    );

    // 5. Run built-in diagnostics on top of the store.
    let top = mistique.topk(predictions, "pred", 5)?;
    println!("\ntop-5 predicted errors (row, value):");
    for (row, value) in top {
        println!("  home {row}: {value:.4}");
    }
    Ok(())
}
