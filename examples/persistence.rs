//! Persistence walkthrough: build and persist a store, "restart", reopen,
//! and keep diagnosing — the MetadataDB and every materialized intermediate
//! survive; re-running only needs the executable model re-attached.
//!
//! ```sh
//! cargo run --release --example persistence
//! ```

use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempfile::tempdir()?;
    let data = Arc::new(ZillowData::generate(3_000, 42));
    let pipeline = zillow_pipelines().remove(0);

    // --- Session 1: log and persist. -------------------------------------
    let preds = {
        let mut sys = Mistique::open(dir.path(), MistiqueConfig::default())?;
        let id = sys.register_trad(pipeline.clone(), Arc::clone(&data))?;
        sys.log_intermediates(&id)?;
        let preds = sys.intermediates_of(&id).last().unwrap().clone();
        sys.persist()?;
        println!(
            "session 1: logged {} intermediates, persisted {} bytes",
            sys.intermediates_of(&id).len(),
            sys.store().disk_bytes()?
        );
        preds
    }; // sys dropped: "process exits"

    // --- Session 2: reopen and read, no model needed. --------------------
    let mut sys = Mistique::reopen(dir.path(), MistiqueConfig::default())?;
    println!(
        "session 2: reopened with {} model(s) in the MetadataDB",
        sys.model_ids().len()
    );
    let r = sys.fetch_with_strategy(&preds, Some(&["pred"]), None, FetchStrategy::Read)?;
    println!(
        "  read {} predictions straight from disk in {:?}",
        r.frame.n_rows(),
        r.fetch_time
    );
    let top = sys.topk(&preds, "pred", 3)?;
    println!("  top-3 predicted errors: {top:?}");

    // Re-running needs the executable model back.
    match sys.fetch_with_strategy(&preds, None, None, FetchStrategy::Rerun) {
        Err(e) => println!("  re-run without the model fails cleanly: {e}"),
        Ok(_) => unreachable!("no model source attached yet"),
    }
    sys.reattach_trad(pipeline, data)?;
    let rerun = sys.fetch_with_strategy(&preds, Some(&["pred"]), None, FetchStrategy::Rerun)?;
    println!(
        "  after reattach_trad, re-run works too ({} rows in {:?})",
        rerun.frame.n_rows(),
        rerun.fetch_time
    );
    Ok(())
}
