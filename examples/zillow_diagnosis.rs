//! A TRAD model-diagnosis session, following the workload sketched in the
//! paper's Sec 2.2: "why does the home price prediction model under-perform
//! on old Victorian homes?"
//!
//! (i) plot the prediction error for the model (FCMR),
//! (ii) examine the raw features of the worst-predicted home (MCFR),
//! (iii) check performance on the homes most similar to it (MCMR),
//! (iv) compare its features against the average home (MCMR),
//! plus a cross-model COL_DIFF between two pipeline variants.
//!
//! ```sh
//! cargo run --release --example zillow_diagnosis
//! ```

use std::sync::Arc;

use mistique_core::{Mistique, MistiqueConfig};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempfile::tempdir()?;
    let mut mistique = Mistique::open(dir.path(), MistiqueConfig::default())?;
    let data = Arc::new(ZillowData::generate(6_000, 42));

    // Two variants of the XGBoost pipeline (P2): same features, different
    // hyper-parameters.
    let pipes = zillow_pipelines();
    let a = mistique.register_trad(
        pipes.iter().find(|p| p.id == "P2_v0").unwrap().clone(),
        Arc::clone(&data),
    )?;
    let b = mistique.register_trad(
        pipes.iter().find(|p| p.id == "P2_v3").unwrap().clone(),
        Arc::clone(&data),
    )?;
    mistique.log_intermediates(&a)?;
    mistique.log_intermediates(&b)?;
    println!(
        "logged 2 pipelines; store holds {} unique chunks, {} dedup hits \
         (shared stages stored once)",
        mistique.store().stats().chunks_stored,
        mistique.store().stats().dedup_hits
    );

    let interms_a = mistique.intermediates_of(&a);
    let features = interms_a
        .iter()
        .find(|i| i.contains("DropColumns"))
        .unwrap()
        .clone();
    let preds_a = interms_a.last().unwrap().clone();
    let preds_b = mistique.intermediates_of(&b).last().unwrap().clone();

    // (i) distribution of predicted errors.
    println!("\n(i) COL_DIST: distribution of predicted logerror:");
    for bucket in mistique.col_dist(&preds_a, "pred", 8)? {
        println!(
            "  [{:+.4}, {:+.4})  {}",
            bucket.lo,
            bucket.hi,
            "#".repeat(1 + bucket.count / 40)
        );
    }

    // The home with the highest predicted Zestimate error.
    let worst = mistique.topk(&preds_a, "pred", 1)?[0];
    println!(
        "\nworst-predicted home: row {} (pred {:.4})",
        worst.0, worst.1
    );

    // (ii) raw features of that home.
    println!("\n(ii) raw features of home {}:", worst.0);
    let row = mistique.get_intermediate(&features, None, None)?;
    for col in row.frame.columns() {
        println!("  {:>14}: {:.2}", col.name, col.data.to_f64()[worst.0]);
    }

    // (iii) performance on the most similar homes (KNN).
    println!(
        "\n(iii) KNN: predictions for the 5 homes most similar to home {}:",
        worst.0
    );
    let preds_all = mistique.get_intermediate(&preds_a, Some(&["pred"]), None)?;
    let pred_vals = preds_all.frame.columns()[0].data.to_f64();
    for (neighbor, dist) in mistique.knn(&features, worst.0, 5)? {
        if neighbor < pred_vals.len() {
            println!(
                "  home {neighbor} (dist {dist:.1}): pred {:.4}",
                pred_vals[neighbor]
            );
        }
    }

    // (iv) the home's features vs the average home (ROW vs mean = VIS-style).
    println!(
        "\n(iv) feature deltas, home {} minus dataset mean:",
        worst.0
    );
    let all = mistique.get_intermediate(&features, None, None)?;
    for col in all.frame.columns() {
        let v = col.data.to_f64();
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        println!("  {:>14}: {:+.2}", col.name, v[worst.0] - mean);
    }

    // Cross-model: where do the two variants disagree?
    let diff = mistique.col_diff(&preds_a, "pred", &preds_b, "pred", 1e-3)?;
    println!(
        "\nCOL_DIFF: the two hyper-parameter variants disagree (>1e-3) on {} of {} homes",
        diff.len(),
        pred_vals.len()
    );
    Ok(())
}
