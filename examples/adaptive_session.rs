//! Adaptive materialization (Sec 4.3): start with nothing stored, watch hot
//! intermediates materialize as a diagnosis session repeats queries.
//!
//! ```sh
//! cargo run --release --example adaptive_session
//! ```

use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig, StorageStrategy};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempfile::tempdir()?;
    let mut mistique = Mistique::open(
        dir.path(),
        MistiqueConfig {
            // Materialize once an intermediate saves >= 1 µs of query time
            // per KB stored, per accumulated query.
            storage: StorageStrategy::Adaptive {
                gamma_min: 1e-6 / 1024.0,
            },
            ..MistiqueConfig::default()
        },
    )?;

    let data = Arc::new(ZillowData::generate(5_000, 42));
    let id = mistique.register_trad(zillow_pipelines().remove(0), data)?;
    mistique.log_intermediates(&id)?;
    println!(
        "after logging: {} chunks stored (ADAPTIVE stores nothing up front)",
        mistique.store().stats().chunks_stored
    );

    let preds = mistique.intermediates_of(&id).last().unwrap().clone();
    println!("\nrepeatedly querying {preds}:");
    for round in 1..=4 {
        let r = mistique.get_intermediate(&preds, Some(&["pred"]), None)?;
        let meta = mistique.metadata().intermediate(&preds).unwrap();
        println!(
            "  query {round}: {:?} in {:>10} (n_queries={}, materialized={})",
            r.strategy,
            format!("{:?}", r.fetch_time),
            meta.n_queries,
            meta.materialized
        );
        if round == 1 {
            assert_eq!(r.strategy, FetchStrategy::Rerun, "nothing stored yet");
        }
    }

    // EXPLAIN: the audit trail behind the last decision above — which plan
    // the cost model picked, what it predicted for each, and what the query
    // actually cost.
    if let Some(report) = mistique.last_report() {
        println!("\nEXPLAIN of the last query:");
        print!("{}", report.render());
        println!("\ntrace tree:");
        print!("{}", mistique.render_trace(report.trace_id));
    }

    mistique.flush()?;
    println!(
        "\nfinal store: {} bytes on disk — only the intermediates the \
         session actually hammered",
        mistique.store().disk_bytes()?
    );
    Ok(())
}
