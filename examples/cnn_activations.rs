//! DNN diagnosis: log hidden-layer activations of two CIFAR10_VGG16
//! checkpoints under the default pool(2) scheme, then run the paper's
//! flagship analyses — SVCCA between layers and checkpoints (Sec 1.1),
//! per-class VIS averages (ActiVis), and NetDissect concept scoring.
//!
//! ```sh
//! cargo run --release --example cnn_activations
//! ```

use std::sync::Arc;

use mistique_core::{Mistique, MistiqueConfig};
use mistique_nn::{vgg16_cifar, CifarLike};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = tempfile::tempdir()?;
    let mut mistique = Mistique::open(dir.path(), MistiqueConfig::default())?;

    // 128 synthetic CIFAR-like images, VGG16 at 1/16 channel scale.
    let data = Arc::new(CifarLike::generate(128, 10, 7));
    let arch = Arc::new(vgg16_cifar(16));

    // Two checkpoints: epoch 0 and epoch 9 (conv stack frozen, head trains).
    let e0 = mistique.register_dnn(Arc::clone(&arch), 11, 0, Arc::clone(&data), 64)?;
    let e9 = mistique.register_dnn(Arc::clone(&arch), 11, 9, Arc::clone(&data), 64)?;
    mistique.log_intermediates(&e0)?;
    mistique.log_intermediates(&e9)?;

    let stats = mistique.store().stats();
    println!(
        "logged 2 checkpoints x {} layers; dedup collapsed {} chunks \
         (the frozen conv stack is stored once)",
        mistique.intermediates_of(&e0).len(),
        stats.dedup_hits
    );

    let n_layers = mistique.intermediates_of(&e0).len();

    // SVCCA: how similar is each layer's representation to the logits?
    println!("\nSVCCA(layer, logits) at epoch 0 — deeper layers align more:");
    for layer in [1usize, 6, 11, 16, n_layers - 1] {
        let r = mistique.svcca(
            &format!("{e0}.layer{layer}"),
            &format!("{e0}.layer{n_layers}"),
            0.99,
        )?;
        println!(
            "  layer{layer:>2} vs logits: mean cca = {:.3} (ranks {} x {})",
            r.mean_correlation(),
            r.rank_a,
            r.rank_b
        );
    }

    // SVCCA across checkpoints: frozen layers identical, head diverges.
    println!("\nSVCCA(epoch0, epoch9) per layer — training dynamics:");
    for layer in [1usize, 11, n_layers] {
        let r = mistique.svcca(
            &format!("{e0}.layer{layer}"),
            &format!("{e9}.layer{layer}"),
            0.99,
        )?;
        println!("  layer{layer:>2}: mean cca = {:.3}", r.mean_correlation());
    }

    // VIS: per-class average activation of the last conv block.
    let vis_layer = format!("{e0}.layer16");
    let m = mistique.vis(&vis_layer, &data.labels, 10)?;
    println!("\nVIS: per-class mean activation at layer16 (first 6 neurons):");
    for class in 0..4 {
        let row: Vec<String> = (0..6.min(m.cols()))
            .map(|j| format!("{:+.2}", m[(class, j)]))
            .collect();
        println!("  class {class}: {}", row.join(" "));
    }

    // NetDissect: score unit 0 of layer1 against a synthetic "bright
    // upper-left" concept at the stored (pooled) resolution.
    let l1 = format!("{e0}.layer1");
    let (c, h, w) = mistique
        .metadata()
        .intermediate(&l1)
        .unwrap()
        .shape
        .unwrap();
    println!("\nNetDissect on layer1 ({c} units of {h}x{w} maps):");
    let masks: Vec<Vec<bool>> = (0..data.len())
        .map(|_| {
            (0..h * w)
                .map(|j| {
                    let (y, x) = (j / w, j % w);
                    y < h / 2 && x < w / 2
                })
                .collect()
        })
        .collect();
    for unit in 0..3.min(c) {
        let iou = mistique.netdissect(&l1, unit, &masks, 0.05)?;
        println!("  unit {unit}: IoU with 'upper-left' concept = {iou:.3}");
    }
    Ok(())
}
