//! Parallel multi-model logging must be equivalent to sequential logging:
//! same metadata, same stored data, same dedup effect.

use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn build(parallel: bool) -> (tempfile::TempDir, Mistique, Vec<String>) {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(dir.path(), MistiqueConfig::default()).unwrap();
    let data = Arc::new(ZillowData::generate(300, 42));
    let mut ids = Vec::new();
    for p in zillow_pipelines().into_iter().take(4) {
        ids.push(sys.register_trad(p, Arc::clone(&data)).unwrap());
    }
    if parallel {
        let refs: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
        sys.log_intermediates_parallel(&refs).unwrap();
    } else {
        for id in &ids {
            sys.log_intermediates(id).unwrap();
        }
    }
    (dir, sys, ids)
}

#[test]
fn parallel_equals_sequential() {
    let (_d1, mut seq, ids) = build(false);
    let (_d2, mut par, ids2) = build(true);
    assert_eq!(ids, ids2);

    // Identical dedup accounting (same chunks in the same order).
    let s1 = seq.store().stats();
    let s2 = par.store().stats();
    assert_eq!(s1.logical_bytes, s2.logical_bytes);
    assert_eq!(s1.unique_bytes, s2.unique_bytes);
    assert_eq!(s1.dedup_hits, s2.dedup_hits);

    // Identical data on every intermediate.
    for id in &ids {
        for interm in seq.intermediates_of(id) {
            let a = seq
                .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
                .unwrap()
                .frame;
            let b = par
                .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
                .unwrap()
                .frame;
            assert_eq!(a.n_rows(), b.n_rows(), "{interm}");
            for col in a.columns() {
                let va = col.data.to_f64();
                let vb = b.frame_column_f64(&col.name);
                for (x, y) in va.iter().zip(&vb) {
                    assert!(
                        (x - y).abs() < 1e-12 || (x.is_nan() && y.is_nan()),
                        "{interm} col {}",
                        col.name
                    );
                }
            }
        }
    }
}

trait ColHelper {
    fn frame_column_f64(&self, name: &str) -> Vec<f64>;
}

impl ColHelper for mistique_dataframe::DataFrame {
    fn frame_column_f64(&self, name: &str) -> Vec<f64> {
        self.column(name).unwrap().data.to_f64()
    }
}

#[test]
fn parallel_logging_records_exec_metadata() {
    let (_d, sys, ids) = build(true);
    for id in &ids {
        assert!(sys.logging_overhead(id) > std::time::Duration::ZERO, "{id}");
        for interm in sys.intermediates_of(id) {
            let m = sys.metadata().intermediate(&interm).unwrap();
            assert!(m.materialized);
            assert!(m.stored_bytes > 0);
        }
    }
}

#[test]
fn logging_overhead_includes_storage_time() {
    // The overhead metric (Fig 11) must cover chunking + storage, not just
    // pipeline execution — on both the sequential and the parallel path.
    for parallel in [false, true] {
        let (_d, sys, ids) = build(parallel);
        for id in &ids {
            let total = sys.logging_overhead(id);
            let storage = sys.storage_overhead(id);
            assert!(
                storage > std::time::Duration::ZERO,
                "{id} parallel={parallel}: storage time untracked"
            );
            assert!(
                total >= storage,
                "{id} parallel={parallel}: overhead {total:?} excludes storage {storage:?}"
            );
        }
    }
}

#[test]
fn unknown_id_in_batch_errors() {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(dir.path(), MistiqueConfig::default()).unwrap();
    assert!(sys.log_intermediates_parallel(&["nope"]).is_err());
}
