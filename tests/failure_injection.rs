//! Failure injection: a MISTIQUE store must detect, not silently propagate,
//! on-disk corruption and missing files.

use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;
use mistique_store::StoreError;

fn persisted_store() -> (tempfile::TempDir, Mistique, String) {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(dir.path(), MistiqueConfig::default()).unwrap();
    let data = Arc::new(ZillowData::generate(300, 1));
    let id = sys
        .register_trad(zillow_pipelines().remove(0), data)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    sys.persist().unwrap();
    let interm = sys.intermediates_of(&id)[0].clone();
    (dir, sys, interm)
}

fn partition_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name().unwrap().to_string_lossy().to_string();
            (name.starts_with("part_") && name.ends_with(".bin")).then_some(p)
        })
        .collect()
}

#[test]
fn bitflip_in_partition_detected_as_corruption() {
    let (dir, _sys, interm) = persisted_store();
    // Corrupt every partition file with a single bit flip mid-file.
    for p in partition_files(dir.path()) {
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&p, bytes).unwrap();
    }
    // Fresh process (no read cache, no in-memory partitions).
    let mut sys = Mistique::reopen(dir.path(), MistiqueConfig::default()).unwrap();
    let err = sys
        .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
        .expect_err("corruption must surface as an error");
    let msg = err.to_string();
    assert!(
        msg.contains("corrupt") || msg.contains("checksum") || msg.contains("codec"),
        "unexpected error: {msg}"
    );
}

#[test]
fn truncated_partition_detected() {
    let (dir, _sys, interm) = persisted_store();
    for p in partition_files(dir.path()) {
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
    }
    let mut sys = Mistique::reopen(dir.path(), MistiqueConfig::default()).unwrap();
    assert!(sys
        .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
        .is_err());
}

#[test]
fn deleted_partition_is_not_found() {
    let (dir, _sys, interm) = persisted_store();
    for p in partition_files(dir.path()) {
        std::fs::remove_file(p).unwrap();
    }
    let mut sys = Mistique::reopen(dir.path(), MistiqueConfig::default()).unwrap();
    let err = sys
        .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
        .expect_err("missing files must surface");
    assert!(matches!(
        err,
        mistique_core::MistiqueError::Store(StoreError::NotFound)
    ));
}

#[test]
fn garbage_manifest_rejected() {
    let (dir, _sys, _) = persisted_store();
    std::fs::write(dir.path().join("mistique_manifest.json"), b"{not json").unwrap();
    assert!(Mistique::reopen(dir.path(), MistiqueConfig::default()).is_err());
}

#[test]
fn corruption_does_not_poison_other_partitions() {
    // Corrupt exactly one partition; chunks in other partitions must still
    // read fine.
    let (dir, _sys, _) = persisted_store();
    let files = partition_files(dir.path());
    assert!(files.len() >= 2, "need several partitions for this test");
    let mut victim = std::fs::read(&files[0]).unwrap();
    let mid = victim.len() / 2;
    victim[mid] ^= 0xff;
    std::fs::write(&files[0], victim).unwrap();

    let mut sys = Mistique::reopen(dir.path(), MistiqueConfig::default()).unwrap();
    let mut ok = 0;
    let mut failed = 0;
    for model in sys.model_ids() {
        for interm in sys.intermediates_of(&model) {
            match sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read) {
                Ok(_) => ok += 1,
                Err(_) => failed += 1,
            }
        }
    }
    assert!(failed > 0, "the corrupted partition must fail");
    assert!(ok > 0, "unaffected partitions must keep working");
}
