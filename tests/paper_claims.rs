//! The paper's headline claims, encoded as assertions at test scale.
//! If any of these breaks, the reproduction no longer reproduces.

use std::sync::Arc;

use mistique_core::{
    CaptureScheme, FetchStrategy, Mistique, MistiqueConfig, StorageStrategy, ValueScheme,
};
use mistique_nn::{simple_cnn, vgg16_cifar, CifarLike};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn dnn_storage(arch_scale: usize, capture: CaptureScheme, storage: StorageStrategy) -> u64 {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            storage,
            dnn_capture: capture,
            row_block_size: 32,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(CifarLike::generate(32, 10, 7));
    let arch = Arc::new(vgg16_cifar(arch_scale));
    for epoch in 0..3 {
        let id = sys
            .register_dnn(Arc::clone(&arch), 11, epoch, Arc::clone(&data), 32)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
    }
    sys.flush().unwrap();
    sys.store().disk_bytes().unwrap()
}

// Claim (Sec 8.2 / Fig 6a): DEDUP shrinks TRAD storage by a large factor and
// its cumulative growth is dominated by the first pipeline.
#[test]
fn claim_trad_dedup_shrinks_storage() {
    let run = |storage| {
        let dir = tempfile::tempdir().unwrap();
        let mut sys = Mistique::open(
            dir.path(),
            MistiqueConfig {
                storage,
                ..MistiqueConfig::default()
            },
        )
        .unwrap();
        let data = Arc::new(ZillowData::generate(400, 42));
        let mut first = 0u64;
        for (i, p) in zillow_pipelines().into_iter().take(5).enumerate() {
            let id = sys.register_trad(p, Arc::clone(&data)).unwrap();
            sys.log_intermediates(&id).unwrap();
            sys.flush().unwrap();
            if i == 0 {
                first = sys.store().disk_bytes().unwrap();
            }
        }
        (first, sys.store().disk_bytes().unwrap())
    };
    let (_, store_all) = run(StorageStrategy::StoreAll);
    let (dedup_first, dedup_total) = run(StorageStrategy::Dedup);
    assert!(
        store_all as f64 > dedup_total as f64 * 3.0,
        "5 variants must dedup >3x: {store_all} vs {dedup_total}"
    );
    assert!(
        dedup_first as f64 > dedup_total as f64 * 0.5,
        "first pipeline dominates DEDUP storage: {dedup_first} of {dedup_total}"
    );
}

// Claim (Sec 8.2 / Fig 6b): quantization/summarization shrink DNN storage in
// the order full > LP > pool(2) > pool(32), and DEDUP collapses the frozen
// conv stack of a fine-tuned model across checkpoints.
#[test]
fn claim_dnn_scheme_ordering_and_finetune_dedup() {
    let full = dnn_storage(
        32,
        CaptureScheme {
            value: ValueScheme::Full,
            pool_sigma: None,
        },
        StorageStrategy::StoreAll,
    );
    let lp = dnn_storage(
        32,
        CaptureScheme {
            value: ValueScheme::Lp,
            pool_sigma: None,
        },
        StorageStrategy::StoreAll,
    );
    let pool2 = dnn_storage(32, CaptureScheme::pool2(), StorageStrategy::StoreAll);
    let pool32 = dnn_storage(
        32,
        CaptureScheme {
            value: ValueScheme::Full,
            pool_sigma: Some(32),
        },
        StorageStrategy::StoreAll,
    );
    assert!(
        full > lp && lp > pool2 && pool2 > pool32,
        "{full} > {lp} > {pool2} > {pool32}"
    );

    let with_dedup = dnn_storage(32, CaptureScheme::pool2(), StorageStrategy::Dedup);
    assert!(
        pool2 as f64 > with_dedup as f64 * 2.0,
        "3 checkpoints of a frozen conv stack must dedup >2x: {pool2} vs {with_dedup}"
    );
}

// Claim (Sec 8.1 / Fig 5): for deep, expensive intermediates, reading beats
// re-running by a large factor — and the cost model picks reading.
#[test]
fn claim_read_beats_rerun_for_deep_intermediates() {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(dir.path(), MistiqueConfig::default()).unwrap();
    let data = Arc::new(ZillowData::generate(800, 42));
    let id = sys
        .register_trad(zillow_pipelines().remove(0), data)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    let preds = sys.intermediates_of(&id).last().unwrap().clone();

    let auto = sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap();
    assert_eq!(
        auto.strategy,
        FetchStrategy::Read,
        "cost model must pick read"
    );

    let read = sys
        .fetch_with_strategy(&preds, Some(&["pred"]), None, FetchStrategy::Read)
        .unwrap();
    let rerun = sys
        .fetch_with_strategy(&preds, Some(&["pred"]), None, FetchStrategy::Rerun)
        .unwrap();
    assert!(
        rerun.fetch_time > read.fetch_time * 3,
        "read {:?} must clearly beat rerun {:?}",
        read.fetch_time,
        rerun.fetch_time
    );
}

// Claim (Sec 8.4 / Table 2): 8BIT_QT barely changes SVCCA; Fig 9: THRESHOLD
// drastically changes per-class averages. Checked via the diagnostics API on
// a small CNN.
#[test]
fn claim_quantization_fidelity_ordering() {
    use mistique_core::diagnostics::frame_to_matrix;
    use mistique_linalg::svcca;
    use mistique_quantize::{KbitQuantizer, ThresholdQuantizer};

    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            dnn_capture: CaptureScheme {
                value: ValueScheme::Full,
                pool_sigma: None,
            },
            row_block_size: 32,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(CifarLike::generate(48, 10, 3));
    let id = sys
        .register_dnn(Arc::new(simple_cnn(16)), 5, 0, data, 32)
        .unwrap();
    sys.log_intermediates(&id).unwrap();

    let n_layers = sys.intermediates_of(&id).len();
    let logits = frame_to_matrix(
        &sys.fetch_with_strategy(
            &format!("{id}.layer{n_layers}"),
            None,
            None,
            FetchStrategy::Read,
        )
        .unwrap()
        .frame,
    );
    let mid = frame_to_matrix(
        &sys.fetch_with_strategy(&format!("{id}.layer7"), None, None, FetchStrategy::Read)
            .unwrap()
            .frame,
    );

    let base = svcca(&logits, &mid, 0.99).mean_correlation();

    let sample: Vec<f32> = mid.data().iter().map(|&v| v as f32).collect();
    let q8 = KbitQuantizer::fit(&sample, 8);
    let mid8 = mistique_linalg::Matrix::from_vec(
        mid.rows(),
        mid.cols(),
        mid.data()
            .iter()
            .map(|&v| q8.value_of(q8.code_of(v as f32)) as f64)
            .collect(),
    );
    let r8 = svcca(&logits, &mid8, 0.99).mean_correlation();
    assert!(
        (base - r8).abs() < 0.1,
        "8BIT must track full precision: {base} vs {r8}"
    );

    let thr = ThresholdQuantizer::fit(&sample, 0.995);
    let midt = mistique_linalg::Matrix::from_vec(
        mid.rows(),
        mid.cols(),
        mid.data()
            .iter()
            .map(|&v| if v as f32 > thr.threshold() { 1.0 } else { 0.0 })
            .collect(),
    );
    let rt = svcca(&logits, &midt, 0.99).mean_correlation();
    assert!(
        (base - rt).abs() > (base - r8).abs(),
        "THRESHOLD must distort more than 8BIT: base {base}, 8bit {r8}, thr {rt}"
    );
}

// Claim (Sec 8.5 / Fig 10): with adaptive materialization, a repeated query
// gets dramatically faster after its intermediate materializes, and total
// storage stays below DEDUP's.
#[test]
fn claim_adaptive_materialization_behaviour() {
    let data = Arc::new(ZillowData::generate(500, 42));
    let dedup_bytes = {
        let dir = tempfile::tempdir().unwrap();
        let mut sys = Mistique::open(
            dir.path(),
            MistiqueConfig {
                storage: StorageStrategy::Dedup,
                ..MistiqueConfig::default()
            },
        )
        .unwrap();
        let id = sys
            .register_trad(zillow_pipelines().remove(0), Arc::clone(&data))
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        sys.flush().unwrap();
        sys.store().disk_bytes().unwrap()
    };

    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            storage: StorageStrategy::Adaptive { gamma_min: 1e-10 },
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let id = sys
        .register_trad(zillow_pipelines().remove(0), data)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    let first = sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap();
    let later = sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap();
    assert_eq!(first.strategy, FetchStrategy::Rerun);
    assert_ne!(later.strategy, FetchStrategy::Rerun);
    assert!(
        first.fetch_time > later.fetch_time * 10,
        "{:?} vs {:?}",
        first.fetch_time,
        later.fetch_time
    );

    sys.flush().unwrap();
    assert!(sys.store().disk_bytes().unwrap() < dedup_bytes);
}
