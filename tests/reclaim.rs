//! Storage budget manager end-to-end: γ-driven demotion down the
//! quantization ladder, purge with transparent re-run + re-promotion, the
//! post-reclaim partition compaction, and the budget hooks on the logging
//! and adaptive-materialization paths.

use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig, StorageStrategy, ValueScheme};
use mistique_nn::{simple_cnn, CifarLike};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn config(strategy: StorageStrategy) -> MistiqueConfig {
    MistiqueConfig {
        row_block_size: 40,
        storage: strategy,
        ..MistiqueConfig::default()
    }
}

fn trad_system(strategy: StorageStrategy, n_pipelines: usize) -> (tempfile::TempDir, Mistique) {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(dir.path(), config(strategy)).unwrap();
    let data = Arc::new(ZillowData::generate(150, 1));
    for p in zillow_pipelines().into_iter().take(n_pipelines) {
        let id = sys.register_trad(p, Arc::clone(&data)).unwrap();
        sys.log_intermediates(&id).unwrap();
    }
    (dir, sys)
}

#[test]
fn reclaim_brings_usage_under_budget_and_compacts() {
    let (_d, mut sys) = trad_system(StorageStrategy::Dedup, 3);
    let used = sys.storage_budget_used();
    assert!(used > 0);

    let budget = used / 3;
    let report = sys.reclaim_to(budget).unwrap();

    assert!(report.within_budget(), "report: {}", report.render());
    assert_eq!(report.used_before, used);
    assert!(sys.storage_budget_used() <= budget);
    assert!(
        !report.demotions.is_empty(),
        "shrinking to a third of usage must take ladder steps"
    );
    // Demotion displaces chunks; the pass must compact them away (no
    // manifest exists in stub environments, so compaction always runs here).
    let compaction = report.compaction.expect("compaction ran");
    assert!(compaction.bytes_reclaimed > 0);
    assert_eq!(sys.store().dead_bytes(), 0, "compaction left dead bytes");

    // Every still-materialized intermediate remains readable.
    let mut read_any = false;
    for model in sys.model_ids() {
        for interm in sys.intermediates_of(&model) {
            let m = sys.metadata().intermediate(&interm).unwrap().clone();
            if m.materialized {
                let r = sys
                    .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
                    .unwrap();
                assert_eq!(r.frame.n_rows(), m.n_rows);
                read_any = true;
            }
        }
    }
    assert!(read_any, "the budget was not so tight everything purged");
}

#[test]
fn demoted_lp_reads_stay_within_scheme_error_bound() {
    // DNN activations sit comfortably inside the f16 range, so LP_QT's
    // static relative bound (2^-11) is checkable per value.
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            row_block_size: 8,
            storage: StorageStrategy::Dedup,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(CifarLike::generate(16, 10, 1));
    let id = sys
        .register_dnn(Arc::new(simple_cnn(16)), 5, 0, data, 8)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    let interm = format!("{id}.layer2");

    let full = sys
        .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
        .unwrap()
        .frame;

    let stepped = sys.demote_one_step(&interm).unwrap();
    assert_eq!(stepped, Some(ValueScheme::Lp));
    let meta = sys.metadata().intermediate(&interm).unwrap().clone();
    assert_eq!(meta.scheme.value, ValueScheme::Lp);
    let bound = meta.scheme.value.error_bound().unwrap();
    assert_eq!(bound, 1.0 / 2048.0);

    let demoted = sys
        .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
        .unwrap();
    assert_eq!(demoted.frame.n_rows(), full.n_rows());
    assert_eq!(demoted.frame.n_cols(), full.n_cols());
    for col in full.columns() {
        let a = col.data.to_f64();
        let b = demoted.frame.column(&col.name).unwrap().data.to_f64();
        for (x, y) in a.iter().zip(&b) {
            // Relative bound for normal f16 values plus an absolute slack
            // for the subnormal range.
            assert!(
                (x - y).abs() <= x.abs() * bound + 1e-4,
                "col {}: {x} vs {y} exceeds LP_QT bound",
                col.name
            );
        }
    }
    // The EXPLAIN report of the demoted read carries the new scheme.
    let last = sys.last_report().unwrap();
    assert_eq!(last.scheme, "POOL_QT(2)+LP_QT");
    assert_eq!(last.error_bound, Some(bound));
}

#[test]
fn purged_intermediate_reruns_and_repromotes() {
    let (_d, mut sys) = trad_system(StorageStrategy::Adaptive { gamma_min: 1e-12 }, 1);
    let model = sys.model_ids().remove(0);
    let interm = sys.intermediates_of(&model).last().unwrap().clone();

    // First query re-runs and materializes (γ clears the tiny threshold).
    let r1 = sys.get_intermediate(&interm, None, None).unwrap();
    assert_eq!(r1.strategy, FetchStrategy::Rerun);
    assert!(sys.metadata().intermediate(&interm).unwrap().materialized);

    // An impossible budget walks everything down the ladder and purges it.
    let report = sys.reclaim_to(1).unwrap();
    assert!(
        report.purged.contains(&interm),
        "report: {}",
        report.render()
    );
    let meta = sys.metadata().intermediate(&interm).unwrap().clone();
    assert!(!meta.materialized);
    // Purged chunks are really gone: a forced read is rejected.
    assert!(sys
        .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
        .is_err());

    // The next query transparently re-runs — and re-promotes, since the γ
    // test still clears the threshold.
    let r2 = sys.get_intermediate(&interm, None, None).unwrap();
    assert_eq!(r2.strategy, FetchStrategy::Rerun);
    assert!(sys.metadata().intermediate(&interm).unwrap().materialized);
    assert_eq!(
        sys.metadata().intermediate(&interm).unwrap().scheme.value,
        ValueScheme::Full,
        "re-promotion stores full precision again"
    );

    // And the query after that reads the re-materialized chunks,
    // bit-matching the re-run.
    let r3 = sys.get_intermediate(&interm, None, None).unwrap();
    assert_eq!(r3.strategy, FetchStrategy::Read);
    for col in r2.frame.columns() {
        let a = col.data.to_f64();
        let b = r3.frame.column(&col.name).unwrap().data.to_f64();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9 || (x.is_nan() && y.is_nan()));
        }
    }
}

#[test]
fn ladder_tries_delta_reencode_before_purging() {
    let (_d, mut sys) = trad_system(StorageStrategy::Dedup, 3);
    // An impossible budget walks every intermediate all the way down; on
    // the way each one must pass the DELTA rung exactly once, after
    // THRESHOLD_QT and before its purge.
    let report = sys.reclaim_to(1).unwrap();
    let deltas: Vec<_> = report
        .demotions
        .iter()
        .filter(|d| d.to == "DELTA")
        .collect();
    assert!(
        !deltas.is_empty(),
        "ladder must try delta re-encode before purging: {}",
        report.render()
    );
    for d in &deltas {
        assert_eq!(d.from, "THRESHOLD_QT", "delta rung sits below threshold");
        let i_delta = report
            .demotions
            .iter()
            .position(|x| x.to == "DELTA" && x.intermediate == d.intermediate)
            .unwrap();
        let i_purge = report
            .demotions
            .iter()
            .position(|x| x.to == "PURGED" && x.intermediate == d.intermediate)
            .expect("budget of 1 byte purges everything");
        assert!(i_delta < i_purge, "delta re-encode precedes the purge");
    }
    // A purge resets the flag so a re-materialized copy can try again.
    for d in &deltas {
        assert!(
            !sys.metadata()
                .intermediate(&d.intermediate)
                .unwrap()
                .delta_encoded
        );
    }
    assert!(report.render().contains("delta"));
}

#[test]
fn delta_rung_keeps_threshold_reads_bit_identical() {
    let (_d, mut sys) = trad_system(StorageStrategy::Dedup, 2);
    // Walk every intermediate to the bottom scheme so the next reclaim step
    // for any victim is the delta rung.
    let interms: Vec<String> = sys
        .model_ids()
        .iter()
        .flat_map(|m| sys.intermediates_of(m))
        .collect();
    for i in &interms {
        while sys.demote_one_step(i).unwrap().is_some() {}
    }
    let mut expected = Vec::new();
    for i in &interms {
        let f = sys
            .fetch_with_strategy(i, None, None, FetchStrategy::Read)
            .unwrap()
            .frame;
        expected.push((i.clone(), f));
    }

    let used = sys.storage_budget_used();
    let report = sys.reclaim_to(used - used / 8).unwrap();
    // Index drops come first (cheapest bytes); the first *data* step must be
    // the delta rung, since every victim already sits at THRESHOLD_QT.
    assert_eq!(
        report
            .demotions
            .iter()
            .find(|d| d.from != "INDEX")
            .map(|d| d.to.as_str()),
        Some("DELTA"),
        "every victim sits at THRESHOLD_QT, so the first data step is the delta rung: {}",
        report.render()
    );
    // Intermediates the pass re-encoded carry the flag (reclaim stops as soon
    // as the budget is met, so untouched survivors legitimately don't; a
    // victim purged later in the same pass has its flag reset with the purge).
    for d in report.demotions.iter().filter(|d| d.to == "DELTA") {
        let m = sys.metadata().intermediate(&d.intermediate).unwrap();
        assert!(
            m.delta_encoded || !m.materialized,
            "{} was delta re-encoded but its flag is unset",
            d.intermediate
        );
    }
    // Whatever the pass did — delta re-encodes, purges — surviving
    // intermediates must read back bit-identically.
    for (i, frame) in &expected {
        if !sys.metadata().intermediate(i).unwrap().materialized {
            continue;
        }
        let got = sys
            .fetch_with_strategy(i, None, None, FetchStrategy::Read)
            .unwrap()
            .frame;
        assert_eq!(&got, frame, "delta re-encode changed the bytes of {i}");
    }
}

#[test]
fn reclaim_reports_ring_and_obs_counters() {
    let (_d, mut sys) = trad_system(StorageStrategy::Dedup, 2);
    let used = sys.storage_budget_used();
    let first = sys.reclaim_to(used / 2).unwrap();
    let second = sys.reclaim_to(used / 4).unwrap();
    assert_eq!(first.seq, 0);
    assert_eq!(second.seq, 1);
    assert_eq!(sys.last_reclaim().unwrap().seq, 1);
    assert_eq!(sys.reclaim_reports(10).len(), 2);

    let snap = sys.obs_snapshot();
    assert!(snap.counter("adaptive.demotions") > 0);
    assert_eq!(
        snap.gauge("storage.budget_used") as u64,
        sys.storage_budget_used()
    );
    assert!(snap.counter("compaction.runs") >= 1);
}

#[test]
fn gamma_decision_counts_triggering_query_exactly_once() {
    // Regression for the Eq 5 off-by-one: the query that triggers the γ
    // evaluation must be counted exactly once — n_queries is still 0 at the
    // first decision point and the projection adds the single +1.
    let (_d, mut sys) = trad_system(
        StorageStrategy::Adaptive {
            gamma_min: f64::MAX,
        },
        1,
    );
    let model = sys.model_ids().remove(0);
    let interm = sys.intermediates_of(&model)[1].clone();

    sys.get_intermediate(&interm, None, None).unwrap();
    assert_eq!(
        sys.obs_snapshot().gauge("adaptive.decision_queries") as u64,
        1,
        "first query must evaluate γ at n_queries = 1, not 0 or 2"
    );
    sys.get_intermediate(&interm, None, None).unwrap();
    assert_eq!(
        sys.obs_snapshot().gauge("adaptive.decision_queries") as u64,
        2
    );
    assert_eq!(sys.metadata().intermediate(&interm).unwrap().n_queries, 2);
}

#[test]
fn logging_hook_enforces_configured_budget() {
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = config(StorageStrategy::Dedup);
    cfg.storage_budget_bytes = 4096;
    let mut sys = Mistique::open(dir.path(), cfg).unwrap();
    let data = Arc::new(ZillowData::generate(150, 1));
    let id = sys
        .register_trad(zillow_pipelines().remove(0), data)
        .unwrap();
    sys.log_intermediates(&id).unwrap();

    assert!(
        sys.storage_budget_used() <= 4096,
        "hook after logging must reclaim down to the budget (used {})",
        sys.storage_budget_used()
    );
    let report = sys.last_reclaim().expect("hook ran a reclaim pass");
    assert!(!report.demotions.is_empty());
    assert_eq!(sys.storage_budget(), 4096);
}

#[test]
fn reclaimed_store_persists_and_reopens() {
    let (dir, mut sys) = trad_system(StorageStrategy::Dedup, 2);
    let used = sys.storage_budget_used();
    sys.reclaim_to(used / 2).unwrap();
    match sys.persist() {
        Ok(()) => {}
        Err(mistique_core::MistiqueError::Invalid(msg)) if msg.contains("manifest serialize") => {
            // Environments without a JSON serializer can't persist; the
            // reopen half is covered where one exists.
            eprintln!("skipping reopen half: {msg}");
            return;
        }
        Err(e) => panic!("persist failed: {e}"),
    }
    let survivors: Vec<String> = sys
        .model_ids()
        .iter()
        .flat_map(|m| sys.intermediates_of(m))
        .filter(|i| sys.metadata().intermediate(i).unwrap().materialized)
        .collect();
    drop(sys);

    let mut sys = Mistique::reopen(dir.path(), config(StorageStrategy::Dedup)).unwrap();
    let recovery = sys.recovery_report().unwrap();
    assert_eq!(recovery.quarantined, 0);
    assert_eq!(recovery.missing, 0);
    assert_eq!(
        sys.store().dead_bytes(),
        0,
        "post-compaction manifest carries clean accounting"
    );
    for interm in survivors {
        let m = sys.metadata().intermediate(&interm).unwrap().clone();
        assert!(m.materialized);
        let r = sys
            .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
            .unwrap();
        assert_eq!(r.frame.n_rows(), m.n_rows);
    }
}
