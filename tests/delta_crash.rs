//! Crash-point enumeration for the base+delta storage paths: delta puts,
//! `reencode_as_delta`, and compaction with a pinned base. A simulated power
//! cut is injected at **every** backend syscall of the workload and replayed
//! under all three [`TornWrite`] policies; after each crash the store must
//! recover with zero quarantined partitions and every chunk must read back
//! bit-identical or cleanly `NotFound` — never garbage, never a decode
//! error. A delta chunk whose base partition is missing must fail cleanly
//! too, since a frame without its base is unreadable by design.
//!
//! A separate bitrot test checks the quarantine *propagation* invariant:
//! corrupting the base's partition makes reads of both the base and every
//! delta referencing it fail with a quarantine error, while unrelated
//! partitions stay readable.

use std::path::PathBuf;
use std::sync::Arc;

use mistique_dataframe::{ColumnChunk, ColumnData};
use mistique_store::{
    ChunkKey, DataStore, DataStoreConfig, FaultyFs, PlacementPolicy, StoreError, TornWrite,
};

const POLICIES: [TornWrite; 3] = [TornWrite::DropAll, TornWrite::TornHalf, TornWrite::KeepAll];

fn store_config() -> DataStoreConfig {
    DataStoreConfig {
        policy: PlacementPolicy::ByIntermediate,
        mem_capacity: 1 << 20,
        // Small target so each chunk seals its partition quickly and the
        // workload crosses several files.
        partition_target_bytes: 2048,
        ..DataStoreConfig::default()
    }
}

/// The shared base pattern: compresses, but XORs to near-zero against its
/// perturbed twins.
fn base_chunk() -> ColumnChunk {
    ColumnChunk::new(ColumnData::F64(
        (0..4096).map(|i| (i % 97) as f64).collect(),
    ))
}

/// A near-duplicate of [`base_chunk`]: every `stride`-th value bumped, so
/// MinHash similarity stays above `delta_tau` while the bytes differ.
fn near_chunk(stride: usize) -> ColumnChunk {
    let mut vals: Vec<f64> = (0..4096).map(|i| (i % 97) as f64).collect();
    for i in (0..vals.len()).step_by(stride) {
        vals[i] += 1.0;
    }
    ColumnChunk::new(ColumnData::F64(vals))
}

/// An unrelated pattern no delta should ever pair with the base family.
fn far_chunk() -> ColumnChunk {
    ColumnChunk::new(ColumnData::F64(
        (0..512).map(|i| (i as f64) * 1e6 + 0.25).collect(),
    ))
}

fn key(interm: &str) -> ChunkKey {
    ChunkKey::new(interm, "c", 0)
}

/// The delta workload: a base put, two delta puts against it (pinning the
/// base twice), a raw put later squeezed by `reencode_as_delta`, a
/// retraction that unpins one delta, and a compaction that must rewrite —
/// not drop — the partition holding the still-pinned base.
fn run_workload(ds: &mut DataStore) -> Result<mistique_store::datastore::StoreCatalog, StoreError> {
    ds.put_chunk(key("m.base"), &base_chunk())?;
    ds.put_chunk(key("m.near1"), &near_chunk(512))?; // delta put #1
    ds.put_chunk(key("m.near2"), &near_chunk(256))?; // delta put #2
    ds.put_chunk(key("m.far"), &far_chunk())?;
    // A raw (dedup-off) copy the reclaim ladder would squeeze later.
    ds.put_chunk_with(
        key("m.raw"),
        &near_chunk(128),
        PlacementPolicy::ByIntermediate,
        false,
    )?;
    ds.flush()?;

    // Drop one delta: its bytes die, one pin on the base is released.
    ds.retract_intermediate("m.near2");
    ds.compact(0.9)?;

    // The reclaim rung: re-encode the raw near-duplicate as a delta, then
    // compact its old partition away.
    ds.reencode_as_delta(&key("m.raw"))?;
    ds.compact(0.9)?;
    ds.flush()?;
    Ok(ds.export_catalog())
}

/// The chunks still live at the end of the workload, with expected bytes.
fn live_golden() -> Vec<(ChunkKey, ColumnChunk)> {
    vec![
        (key("m.base"), base_chunk()),
        (key("m.near1"), near_chunk(512)),
        (key("m.far"), far_chunk()),
        (key("m.raw"), near_chunk(128)),
    ]
}

#[test]
fn every_crash_point_leaves_delta_store_consistent() {
    // Golden run on a pristine virtual disk.
    let (golden_catalog, open_ops, total_ops, delta_puts) = {
        let fs = FaultyFs::new();
        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        let open_ops = fs.op_count();
        let catalog = run_workload(&mut ds).unwrap();
        (catalog, open_ops, fs.op_count(), ds.stats().delta_puts)
    };
    assert!(
        delta_puts >= 2,
        "workload must exercise the delta put path, got {delta_puts}"
    );
    assert!(total_ops > open_ops + 10, "workload must exercise the disk");
    let golden = live_golden();

    for k in (open_ops + 1)..=total_ops {
        for policy in POLICIES {
            let fs = FaultyFs::new();
            let mut ds =
                DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
            fs.crash_after(k);
            let r = run_workload(&mut ds);
            assert!(r.is_err(), "crash at op {k} must surface as an error");
            drop(ds);
            fs.power_cut(policy);

            // "Restart": fresh store over the surviving disk, final catalog
            // restored (stands in for the manifest, deltas and pins
            // included).
            let mut ds =
                DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
            ds.import_catalog(golden_catalog.clone());
            let report = ds.recover().unwrap();
            assert_eq!(
                report.quarantined, 0,
                "crash at op {k} ({policy:?}) left a torn partition"
            );

            // Every live chunk reads bit-identical or is cleanly missing. A
            // delta whose base partition did not survive must also land on
            // NotFound — never a garbage decode.
            for (key, expected) in &golden {
                match ds.get_chunk(key) {
                    Ok(got) => {
                        assert_eq!(&got, expected, "crash at {k} ({policy:?}): torn read")
                    }
                    Err(StoreError::NotFound) => {}
                    Err(e) => panic!("crash at {k} ({policy:?}): unexpected error {e}"),
                }
            }
            // The retracted intermediate stays gone.
            assert!(
                ds.get_chunk(&key("m.near2")).is_err(),
                "crash at {k} ({policy:?}): retracted delta resurrected"
            );
        }
    }
}

#[test]
fn completed_delta_workload_survives_power_cut_under_every_policy() {
    for policy in POLICIES {
        let fs = FaultyFs::new();
        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        let catalog = run_workload(&mut ds).unwrap();
        drop(ds);
        fs.power_cut(policy);

        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        ds.import_catalog(catalog);
        let report = ds.recover().unwrap();
        assert_eq!(report.quarantined, 0, "{policy:?}");
        assert_eq!(
            report.missing, 0,
            "completed workload is fully durable ({policy:?})"
        );
        for (key, expected) in &live_golden() {
            assert_eq!(&ds.get_chunk(key).unwrap(), expected, "{policy:?}");
        }
        // The rehydration counter proves the deltas were served as deltas,
        // not silently re-stored raw across the restart.
        assert!(
            ds.obs().counter("store.delta.rehydrations").get() >= 2,
            "{policy:?}: expected delta reads after reopen"
        );
    }
}

#[test]
fn base_partition_bitrot_quarantines_every_dependent_delta() {
    // Re-run the (deterministic) workload on a fresh virtual disk per
    // victim and corrupt one partition file each time — recovery renames a
    // rotten file aside, so one disk can't serve every round. Invariant:
    // each read is bit-identical or a quarantine error, and whenever the
    // *base* fails, every delta referencing it fails too — a delta frame
    // must never decode against missing or rotten base bytes.
    let n_parts = {
        let fs = FaultyFs::new();
        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        run_workload(&mut ds).unwrap();
        drop(ds);
        let n = part_files(&fs).len();
        assert!(n >= 3, "workload must span several partitions, got {n}");
        n
    };

    let golden = live_golden();
    let mut base_failures = 0;
    for i in 0..n_parts {
        let fs = FaultyFs::new();
        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        let catalog = run_workload(&mut ds).unwrap();
        drop(ds);
        let victim = part_files(&fs)[i].clone();
        fs.corrupt_durable(&victim, |bytes| {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
        });

        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        ds.import_catalog(catalog);
        let report = ds.recover().unwrap();
        assert_eq!(report.quarantined, 1, "exactly the rotten file quarantines");

        let mut failed: Vec<&str> = Vec::new();
        for (key, expected) in &golden {
            match ds.get_chunk(key) {
                Ok(got) => assert_eq!(&got, expected, "bitrot in {victim:?}: torn read"),
                Err(e) => {
                    assert!(
                        e.to_string().contains("quarantined"),
                        "bitrot in {victim:?}: expected quarantine error, got {e}"
                    );
                    failed.push(key.intermediate.as_str());
                }
            }
        }
        if failed.contains(&"m.base") {
            base_failures += 1;
            // near1 and raw are stored as deltas against m.base's chunk:
            // losing the base must take them down with it.
            assert!(
                failed.contains(&"m.near1") && failed.contains(&"m.raw"),
                "base quarantined but dependent deltas served: {failed:?}"
            );
        }
    }
    assert_eq!(
        base_failures, 1,
        "exactly one partition holds the pinned base"
    );
}

/// Sorted partition files currently visible on the virtual disk.
fn part_files(fs: &FaultyFs) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs
        .visible_files()
        .into_iter()
        .filter(|p| {
            let n = p.file_name().unwrap().to_string_lossy().into_owned();
            n.starts_with("part_") && n.ends_with(".bin")
        })
        .collect();
    files.sort();
    files
}
