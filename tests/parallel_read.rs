//! Regression tests for the parallel read path: decoded bytes must be
//! identical at every `read_parallelism` setting on the degenerate batch
//! shapes that stress the `(column, block)` striding — one column across
//! many blocks, many columns in one block, and a column count that does not
//! divide the worker count — and a corrupt chunk mid-batch must surface as
//! an error, never a process abort.

use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

/// Build a materialized TRAD system with the given RowBlock size and a byte
/// threshold of zero, so the worker count under test is never clamped away
/// by the adaptive fan-out policy on small test data.
fn system_with_block_size(row_block_size: usize) -> (tempfile::TempDir, Mistique, String) {
    let dir = tempfile::tempdir().unwrap();
    let config = MistiqueConfig {
        row_block_size,
        min_read_bytes_per_worker: 0,
        ..MistiqueConfig::default()
    };
    let mut sys = Mistique::open(dir.path(), config).unwrap();
    let data = Arc::new(ZillowData::generate(400, 3));
    let id = sys
        .register_trad(zillow_pipelines().remove(0), data)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    sys.store_mut().flush().unwrap();
    (dir, sys, id)
}

fn fetch_cold(
    sys: &mut Mistique,
    interm: &str,
    columns: Option<&[&str]>,
    workers: usize,
) -> mistique_dataframe::DataFrame {
    sys.set_read_parallelism(workers);
    sys.store_mut().clear_read_cache();
    sys.fetch_with_strategy(interm, columns, None, FetchStrategy::Read)
        .unwrap()
        .frame
}

fn assert_bit_identical(
    serial: &mistique_dataframe::DataFrame,
    par: &mistique_dataframe::DataFrame,
    label: &str,
) {
    assert_eq!(serial.n_rows(), par.n_rows(), "{label}");
    assert_eq!(serial.n_cols(), par.n_cols(), "{label}");
    for col in serial.columns() {
        let a = col.data.to_f64();
        let b = par.column(&col.name).unwrap().data.to_f64();
        assert_eq!(a.len(), b.len(), "{label} col {}", col.name);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{label} col {} row {i}", col.name);
        }
    }
}

#[test]
fn single_column_many_blocks_is_bit_identical() {
    // 400 rows / 16-row blocks = 25 blocks of one column: the per-column
    // fan-out of old had exactly one work item here; block striding must
    // still reassemble them in order at every worker count.
    let (_d, mut sys, id) = system_with_block_size(16);
    let interm = sys.intermediates_of(&id)[2].clone();
    let first = {
        let frame = fetch_cold(&mut sys, &interm, None, 1);
        frame.column_names()[0].to_string()
    };
    let cols = [first.as_str()];
    let serial = fetch_cold(&mut sys, &interm, Some(&cols), 1);
    assert_eq!(serial.n_cols(), 1);
    for workers in [2usize, 4, 0] {
        let par = fetch_cold(&mut sys, &interm, Some(&cols), workers);
        assert_bit_identical(
            &serial,
            &par,
            &format!("1 col x 25 blocks, workers={workers}"),
        );
    }
}

#[test]
fn many_columns_one_block_is_bit_identical() {
    // A RowBlock larger than the data: every column is a single chunk, so
    // the item count equals the column count.
    let (_d, mut sys, id) = system_with_block_size(1024);
    let interm = sys.intermediates_of(&id)[3].clone();
    let serial = fetch_cold(&mut sys, &interm, None, 1);
    for workers in [2usize, 4, 0] {
        let par = fetch_cold(&mut sys, &interm, None, workers);
        assert_bit_identical(
            &serial,
            &par,
            &format!("n cols x 1 block, workers={workers}"),
        );
    }
}

#[test]
fn column_count_not_divisible_by_workers_is_bit_identical() {
    // Pick a column subset whose size shares no factor with the worker
    // counts (3, 5, 7 columns vs 2 and 4 workers), over several blocks, so
    // round-robin striding wraps unevenly.
    let (_d, mut sys, id) = system_with_block_size(64);
    let interm = sys.intermediates_of(&id)[4].clone();
    let all = fetch_cold(&mut sys, &interm, None, 1);
    let names: Vec<String> = all.column_names().iter().map(|s| s.to_string()).collect();
    for take in [3usize, 5, 7] {
        if names.len() < take {
            continue;
        }
        let subset: Vec<&str> = names.iter().take(take).map(|s| s.as_str()).collect();
        let serial = fetch_cold(&mut sys, &interm, Some(&subset), 1);
        for workers in [2usize, 4] {
            let par = fetch_cold(&mut sys, &interm, Some(&subset), workers);
            assert_bit_identical(&serial, &par, &format!("{take} cols, workers={workers}"));
        }
    }
}

#[test]
fn corrupt_chunk_mid_batch_is_an_error_not_an_abort() {
    // Flip bytes in the middle of every sealed partition file, then force a
    // cold parallel read. Whatever layer notices first — the partition
    // integrity trailer or the chunk decoder — the query must come back as
    // `Err`, and the process must survive to run the next statement.
    let (dir, mut sys, id) = system_with_block_size(32);
    let interm = sys.intermediates_of(&id)[2].clone();
    // Sanity: intact read works.
    fetch_cold(&mut sys, &interm, None, 4);

    let mut corrupted = 0usize;
    let mut stack = vec![dir.path().to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("part_") && n.ends_with(".bin"))
            {
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                for b in bytes.iter_mut().skip(mid).take(16) {
                    *b ^= 0xA5;
                }
                std::fs::write(&path, &bytes).unwrap();
                corrupted += 1;
            }
        }
    }
    assert!(corrupted > 0, "no sealed partitions found to corrupt");

    for workers in [1usize, 4] {
        sys.set_read_parallelism(workers);
        sys.store_mut().clear_read_cache();
        assert!(
            sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
                .is_err(),
            "corrupt partition must fail the query (workers={workers})"
        );
    }
}
