//! Crash-safety of the zone-map / max-activation index: enumerate a
//! simulated power cut at **every** backend syscall of a log → indexed
//! query → reclaim → persist workload (index writes are interleaved with
//! data writes on the same [`FaultyFs`]) under all three [`TornWrite`]
//! policies, and assert:
//!
//! - a torn index write never quarantines a *data* partition or breaks
//!   reopen — index I/O is best-effort, data invariants are
//!   `tests/crash_safety.rs`'s unchanged contract;
//! - whatever survives under `<dir>/index/` either parses as a complete
//!   index or is cleanly rejected by [`IntermediateIndex::from_bytes`] —
//!   never a panic, never a half-read;
//! - a reopened system serves top-k and threshold answers that are
//!   bit-identical to a fresh scan, whether its index survived, was torn,
//!   or was overwritten with garbage: the index degrades to a scan, it
//!   never degrades to a wrong answer.

use std::sync::Arc;

use mistique_core::{
    FetchStrategy, IndexDir, IntermediateIndex, Mistique, MistiqueConfig, MistiqueError, PlanChoice,
};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;
use mistique_store::{FaultyFs, StorageBackend, TornWrite};

const POLICIES: [TornWrite; 3] = [TornWrite::DropAll, TornWrite::TornHalf, TornWrite::KeepAll];

fn sys_config() -> MistiqueConfig {
    MistiqueConfig {
        row_block_size: 50,
        // An astronomic tolerance keeps the workload's backend op sequence
        // deterministic: no timing-dependent drift flags or plan flips.
        drift_tolerance: 1e12,
        ..MistiqueConfig::default()
    }
}

/// The workload under test: logging builds and persists the index, the
/// queries serve from it, the starved reclaim sheds and rebuilds it while
/// demoting data, and `persist()` closes with a data op so a swallowed
/// index-write failure still surfaces once the disk is gone.
fn run_workload(sys: &mut Mistique, data: &Arc<ZillowData>) -> Result<(), MistiqueError> {
    let id = sys.register_trad(zillow_pipelines().remove(0), Arc::clone(data))?;
    sys.log_intermediates(&id)?;
    sys.cost_model_mut().read_bandwidth = 1e18;
    let interm = sys.intermediates_of(&id).last().unwrap().clone();
    let col = sys.metadata().intermediate(&interm).unwrap().columns[0].clone();
    sys.topk(&interm, &col, 5)?;
    sys.select_where_gt(&interm, &col, 0.0)?;
    sys.reclaim_to(256)?;
    sys.persist()?;
    Ok(())
}

/// Every surviving file under `<dir>/index/` must go through the parser
/// without panicking: complete files parse, torn ones return `Err`.
fn assert_index_files_parse_or_reject(fs: &FaultyFs, ctx: &str) {
    let backend: Arc<dyn StorageBackend> = Arc::new(fs.clone());
    let io = IndexDir::open_readonly(backend, "/vfs".as_ref());
    for name in io.list().unwrap_or_default() {
        let Ok(bytes) = io.read(&name) else {
            continue;
        };
        match IntermediateIndex::from_bytes(&bytes) {
            Ok(idx) => assert!(idx.n_rows > 0, "{ctx}: parsed index {name} is degenerate"),
            Err(e) => assert!(
                !e.is_empty(),
                "{ctx}: rejection of {name} must carry a reason"
            ),
        }
    }
}

/// Reference check: the system's top-k and threshold answers must equal a
/// scan over a freshly fetched frame, bit for bit.
fn assert_queries_match_scans(sys: &mut Mistique, ctx: &str) {
    sys.cost_model_mut().read_bandwidth = 1e18;
    for model in sys.model_ids() {
        for interm in sys.intermediates_of(&model) {
            let Some(meta) = sys.metadata().intermediate(&interm).cloned() else {
                continue;
            };
            if !meta.materialized {
                continue;
            }
            let col = meta.columns[0].clone();
            let frame = sys
                .fetch_with_strategy(&interm, Some(&[col.as_str()]), None, FetchStrategy::Read)
                .unwrap()
                .frame;
            let vals = frame.columns()[0].data.to_f64();

            let mut pairs: Vec<(usize, f64)> = vals.iter().copied().enumerate().collect();
            pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
            pairs.truncate(5);
            let got = sys.topk(&interm, &col, 5).unwrap();
            assert_eq!(got.len(), pairs.len(), "{ctx}: topk {interm}");
            for (g, want) in got.iter().zip(&pairs) {
                assert_eq!(g.0, want.0, "{ctx}: topk row {interm}");
                assert_eq!(
                    g.1.to_bits(),
                    want.1.to_bits(),
                    "{ctx}: topk value {interm}"
                );
            }

            let mid = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max) / 2.0;
            let want: Vec<usize> = vals
                .iter()
                .enumerate()
                .filter(|(_, v)| **v > mid)
                .map(|(i, _)| i)
                .collect();
            let got = sys.select_where_gt(&interm, &col, mid).unwrap();
            assert_eq!(got, want, "{ctx}: select_gt {interm}");
        }
    }
}

#[test]
fn every_crash_point_leaves_index_harmless_and_data_clean() {
    let data = Arc::new(ZillowData::generate(80, 1));

    // Golden run over a pristine virtual disk.
    let fs = FaultyFs::new();
    let mut sys = Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
    let open_ops = fs.op_count();
    match run_workload(&mut sys, &data) {
        Ok(()) => {}
        Err(MistiqueError::Invalid(msg)) if msg.contains("manifest serialize") => {
            eprintln!("note: skipping index crash enumeration: {msg}");
            return;
        }
        Err(e) => panic!("golden workload failed: {e}"),
    }
    let total = fs.op_count();
    assert!(
        fs.visible_files()
            .iter()
            .any(|p| p.to_string_lossy().contains("/index/")),
        "golden workload must persist index files for the sweep to mean anything"
    );
    drop(sys);

    for k in (open_ops + 1)..=total {
        for policy in POLICIES {
            let fs = FaultyFs::new();
            let mut sys =
                Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
            fs.crash_after(k);
            let r = run_workload(&mut sys, &data);
            assert!(
                r.is_err(),
                "crash at op {k} must surface through a data op (index \
                 failures are swallowed, but persist comes after every hook)"
            );
            drop(sys);
            fs.power_cut(policy);

            let ctx = format!("crash at {k} ({policy:?})");
            assert_index_files_parse_or_reject(&fs, &ctx);

            match Mistique::reopen_with_backend("/vfs", sys_config(), Arc::new(fs.clone())) {
                Err(MistiqueError::NoManifest) => {}
                Err(e) => panic!("{ctx}: reopen failed: {e}"),
                Ok(mut sys) => {
                    let report = sys.recovery_report().unwrap();
                    assert_eq!(
                        report.quarantined, 0,
                        "{ctx}: torn index write quarantined a data partition"
                    );
                    assert_queries_match_scans(&mut sys, &ctx);
                }
            }
        }
    }
}

#[test]
fn garbage_index_files_degrade_to_scans_with_identical_answers() {
    let data = Arc::new(ZillowData::generate(80, 1));
    let fs = FaultyFs::new();
    let mut sys = Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
    match run_workload(&mut sys, &data) {
        Ok(()) => {}
        Err(MistiqueError::Invalid(msg)) if msg.contains("manifest serialize") => {
            eprintln!("note: skipping index corruption test: {msg}");
            return;
        }
        Err(e) => panic!("golden workload failed: {e}"),
    }
    drop(sys);

    // Overwrite every index file with binary garbage.
    let idx_files: Vec<_> = fs
        .visible_files()
        .into_iter()
        .filter(|p| p.to_string_lossy().contains("/index/"))
        .collect();
    assert!(!idx_files.is_empty(), "workload must write index files");
    for f in &idx_files {
        fs.corrupt_durable(f, |bytes| {
            for b in bytes.iter_mut() {
                *b = 0xfe;
            }
        });
    }

    // Data recovery is untouched by index bitrot...
    let mut sys =
        Mistique::reopen_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
    let report = sys.recovery_report().unwrap();
    assert_eq!(report.quarantined, 0, "index bitrot is not data bitrot");
    assert_eq!(report.missing, 0);

    // ...and every query falls back to the scan path with identical
    // answers: no IndexedRead plan can serve from garbage.
    assert_queries_match_scans(&mut sys, "garbage index");
    assert_eq!(
        sys.query_reports(usize::MAX)
            .iter()
            .filter(|r| r.plan == PlanChoice::IndexedRead)
            .count(),
        0,
        "a rejected index must never serve a plan"
    );
}
