//! Property tests on cross-crate invariants: arbitrary frames must survive
//! the chunk → dedup → partition → compress → disk → decompress → stitch
//! loop bit-exactly, and quantization error bounds must hold for arbitrary
//! activation distributions.

use std::time::Duration;

use mistique_core::capture::CaptureScheme;
use mistique_core::metadata::{IntermediateMeta, ModelKind, ModelMeta};
use mistique_core::CostModel;
use mistique_dataframe::{Column, ColumnData, DataFrame};
use mistique_quantize::half::f16;
use mistique_quantize::KbitQuantizer;
use mistique_store::{ChunkKey, DataStore, DataStoreConfig, PlacementPolicy};
use proptest::prelude::*;

fn arb_column_data() -> impl Strategy<Value = ColumnData> {
    let n = 1..200usize;
    prop_oneof![
        n.clone()
            .prop_flat_map(|n| proptest::collection::vec(any::<f64>(), n))
            .prop_map(ColumnData::F64),
        n.clone()
            .prop_flat_map(|n| proptest::collection::vec(any::<f32>(), n))
            .prop_map(ColumnData::F32),
        n.clone()
            .prop_flat_map(|n| proptest::collection::vec(any::<i64>(), n))
            .prop_map(ColumnData::I64),
        n.clone()
            .prop_flat_map(|n| proptest::collection::vec(any::<u8>(), n))
            .prop_map(ColumnData::U8),
        n.prop_flat_map(|n| proptest::collection::vec(any::<bool>(), n))
            .prop_map(ColumnData::Bool),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The full storage loop is lossless for arbitrary column data, under
    // both placement policies, warm and cold.
    #[test]
    fn store_roundtrip_is_bit_exact(data in arb_column_data(), by_sim in any::<bool>()) {
        let dir = tempfile::tempdir().unwrap();
        let policy = if by_sim {
            PlacementPolicy::BySimilarity { tau: 0.6 }
        } else {
            PlacementPolicy::ByIntermediate
        };
        let mut store = DataStore::open(
            dir.path(),
            DataStoreConfig { policy, ..DataStoreConfig::default() },
        ).unwrap();
        let chunk = mistique_dataframe::ColumnChunk::new(data);
        let key = ChunkKey::new("m.i", "c", 0);
        store.put_chunk(key.clone(), &chunk).unwrap();
        // Warm read.
        prop_assert_eq!(&store.get_chunk(&key).unwrap(), &chunk);
        // Cold read from disk.
        store.flush().unwrap();
        store.clear_read_cache();
        prop_assert_eq!(&store.get_chunk(&key).unwrap(), &chunk);
    }

    // Chunking a frame and stitching it back is the identity, for any block
    // size.
    #[test]
    fn chunk_stitch_identity(
        values in proptest::collection::vec(any::<f64>(), 1..500),
        block in 1..64usize,
    ) {
        let df = DataFrame::from_columns(vec![Column::f64("x", values)]);
        let mut chunks = Vec::new();
        for (_, _, c) in df.chunks(block) {
            chunks.push(c);
        }
        let back = DataFrame::from_chunks(vec![("x".to_string(), chunks)]);
        prop_assert_eq!(back, df);
    }

    // f16 conversion error is within half-precision ULP bounds for normal
    // values.
    #[test]
    fn f16_error_bound(v in -60000.0f32..60000.0) {
        let r = f16::from_f32(v).to_f32();
        // Relative error bounded by 2^-11 for normals; absolute fallback for
        // values that land in the subnormal range.
        let ok = if v.abs() >= 6.2e-5 {
            (r - v).abs() <= v.abs() * 4.9e-4
        } else {
            (r - v).abs() <= 6e-8
        };
        prop_assert!(ok, "{v} -> {r}");
    }

    // KBIT quantization is monotone: order is preserved up to ties.
    #[test]
    fn kbit_codes_monotone(mut sample in proptest::collection::vec(-1000.0f32..1000.0, 10..300)) {
        let q = KbitQuantizer::fit(&sample, 8);
        sample.sort_by(|a, b| a.total_cmp(b));
        let codes = q.encode_codes(&sample);
        for w in codes.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    // Reconstruction never leaves the sample's value range.
    #[test]
    fn kbit_reconstruction_stays_in_range(
        sample in proptest::collection::vec(-1e6f32..1e6, 2..200),
        bits in 1u32..=8,
    ) {
        let q = KbitQuantizer::fit(&sample, bits);
        let lo = sample.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = sample.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for &v in &sample {
            let r = q.value_of(q.code_of(v));
            prop_assert!(r >= lo - 1e-3 && r <= hi + 1e-3, "{r} outside [{lo}, {hi}]");
        }
    }

    // Cost-model monotonicity: reading more rows never predicts less time;
    // re-running a DNN for more examples never predicts less time; gamma
    // never decreases with more queries.
    #[test]
    fn cost_model_monotone(
        bytes_per_row in 1u64..10_000,
        cum_ms in 1u64..100_000,
        n1 in 1usize..10_000,
        extra in 1usize..10_000,
        q1 in 0u64..1000,
    ) {
        let cm = CostModel::default();
        let model = ModelMeta {
            id: "m".into(),
            kind: ModelKind::Dnn,
            n_stages: 3,
            model_load: Duration::from_millis(5),
            n_examples: 10_000,
            intermediates: vec![],
        };
        let mut meta = IntermediateMeta {
            id: "m.i".into(),
            model_id: "m".into(),
            stage_index: 1,
            n_rows: 10_000,
            columns: vec![],
            scheme: CaptureScheme::full(),
            materialized: true,
            stored_bytes: bytes_per_row * 10_000,
            exec_time: Duration::from_millis(cum_ms),
            cum_exec_time: Duration::from_millis(cum_ms),
            n_queries: q1,
            quantizer: None,
            threshold: None,
            shape: None,
        };
        let n2 = n1 + extra;
        prop_assert!(cm.t_read(&meta, n2) >= cm.t_read(&meta, n1));
        prop_assert!(cm.t_rerun(&model, &meta, n2) >= cm.t_rerun(&model, &meta, n1));
        let g1 = cm.gamma(&model, &meta, meta.stored_bytes.max(1));
        meta.n_queries = q1 + 1;
        let g2 = cm.gamma(&model, &meta, meta.stored_bytes.max(1));
        prop_assert!(g2 >= g1, "gamma must grow with queries: {g1} -> {g2}");
    }

    // The read-vs-rerun decision is consistent with the two predictions.
    #[test]
    fn decision_matches_predictions(
        bytes_per_row in 1u64..1_000_000,
        cum_ms in 0u64..1_000_000,
        n in 1usize..10_000,
    ) {
        let cm = CostModel::default();
        let model = ModelMeta {
            id: "m".into(),
            kind: ModelKind::Trad,
            n_stages: 3,
            model_load: Duration::ZERO,
            n_examples: 10_000,
            intermediates: vec![],
        };
        let meta = IntermediateMeta {
            id: "m.i".into(),
            model_id: "m".into(),
            stage_index: 1,
            n_rows: 10_000,
            columns: vec![],
            scheme: CaptureScheme::full(),
            materialized: true,
            stored_bytes: bytes_per_row * 10_000,
            exec_time: Duration::from_millis(cum_ms),
            cum_exec_time: Duration::from_millis(cum_ms),
            n_queries: 0,
            quantizer: None,
            threshold: None,
            shape: None,
        };
        let should = cm.should_read(&model, &meta, n);
        prop_assert_eq!(should, cm.t_rerun(&model, &meta, n) >= cm.t_read(&meta, n));
    }
}
