//! Property tests on cross-crate invariants: arbitrary frames must survive
//! the chunk → dedup → partition → compress → disk → decompress → stitch
//! loop bit-exactly, and quantization error bounds must hold for arbitrary
//! activation distributions.

use std::time::Duration;

use mistique_compress::basedelta;
use mistique_core::capture::{decode_column, encode_batch, pool_batch, CaptureScheme, ValueScheme};
use mistique_core::metadata::{IntermediateMeta, ModelKind, ModelMeta};
use mistique_core::CostModel;
use mistique_dataframe::{Column, ColumnData, DataFrame};
use mistique_quantize::half::f16;
use mistique_quantize::pool::pooled_dims;
use mistique_quantize::{avg_pool2d, max_pool2d, KbitQuantizer, ThresholdQuantizer};
use mistique_store::{ChunkKey, DataStore, DataStoreConfig, PlacementPolicy};
use proptest::prelude::*;

fn arb_column_data() -> impl Strategy<Value = ColumnData> {
    let n = 1..200usize;
    prop_oneof![
        n.clone()
            .prop_flat_map(|n| proptest::collection::vec(any::<f64>(), n))
            .prop_map(ColumnData::F64),
        n.clone()
            .prop_flat_map(|n| proptest::collection::vec(any::<f32>(), n))
            .prop_map(ColumnData::F32),
        n.clone()
            .prop_flat_map(|n| proptest::collection::vec(any::<i64>(), n))
            .prop_map(ColumnData::I64),
        n.clone()
            .prop_flat_map(|n| proptest::collection::vec(any::<u8>(), n))
            .prop_map(ColumnData::U8),
        n.prop_flat_map(|n| proptest::collection::vec(any::<bool>(), n))
            .prop_map(ColumnData::Bool),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The full storage loop is lossless for arbitrary column data, under
    // both placement policies, warm and cold.
    #[test]
    fn store_roundtrip_is_bit_exact(data in arb_column_data(), by_sim in any::<bool>()) {
        let dir = tempfile::tempdir().unwrap();
        let policy = if by_sim {
            PlacementPolicy::BySimilarity { tau: 0.6 }
        } else {
            PlacementPolicy::ByIntermediate
        };
        let mut store = DataStore::open(
            dir.path(),
            DataStoreConfig { policy, ..DataStoreConfig::default() },
        ).unwrap();
        let chunk = mistique_dataframe::ColumnChunk::new(data);
        let key = ChunkKey::new("m.i", "c", 0);
        store.put_chunk(key.clone(), &chunk).unwrap();
        // Warm read.
        prop_assert_eq!(&store.get_chunk(&key).unwrap(), &chunk);
        // Cold read from disk.
        store.flush().unwrap();
        store.clear_read_cache();
        prop_assert_eq!(&store.get_chunk(&key).unwrap(), &chunk);
    }

    // Chunking a frame and stitching it back is the identity, for any block
    // size.
    #[test]
    fn chunk_stitch_identity(
        values in proptest::collection::vec(any::<f64>(), 1..500),
        block in 1..64usize,
    ) {
        let df = DataFrame::from_columns(vec![Column::f64("x", values)]);
        let mut chunks = Vec::new();
        for (_, _, c) in df.chunks(block) {
            chunks.push(c);
        }
        let back = DataFrame::from_chunks(vec![("x".to_string(), chunks)]);
        prop_assert_eq!(back, df);
    }

    // f16 conversion error is within half-precision ULP bounds for normal
    // values.
    #[test]
    fn f16_error_bound(v in -60000.0f32..60000.0) {
        let r = f16::from_f32(v).to_f32();
        // Relative error bounded by 2^-11 for normals; absolute fallback for
        // values that land in the subnormal range.
        let ok = if v.abs() >= 6.2e-5 {
            (r - v).abs() <= v.abs() * 4.9e-4
        } else {
            (r - v).abs() <= 6e-8
        };
        prop_assert!(ok, "{v} -> {r}");
    }

    // KBIT quantization is monotone: order is preserved up to ties.
    #[test]
    fn kbit_codes_monotone(mut sample in proptest::collection::vec(-1000.0f32..1000.0, 10..300)) {
        let q = KbitQuantizer::fit(&sample, 8);
        sample.sort_by(|a, b| a.total_cmp(b));
        let codes = q.encode_codes(&sample);
        for w in codes.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    // Reconstruction never leaves the sample's value range.
    #[test]
    fn kbit_reconstruction_stays_in_range(
        sample in proptest::collection::vec(-1e6f32..1e6, 2..200),
        bits in 1u32..=8,
    ) {
        let q = KbitQuantizer::fit(&sample, bits);
        let lo = sample.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = sample.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for &v in &sample {
            let r = q.value_of(q.code_of(v));
            prop_assert!(r >= lo - 1e-3 && r <= hi + 1e-3, "{r} outside [{lo}, {hi}]");
        }
    }

    // Cost-model monotonicity: reading more rows never predicts less time;
    // re-running a DNN for more examples never predicts less time; gamma
    // never decreases with more queries.
    #[test]
    fn cost_model_monotone(
        bytes_per_row in 1u64..10_000,
        cum_ms in 1u64..100_000,
        n1 in 1usize..10_000,
        extra in 1usize..10_000,
        q1 in 0u64..1000,
    ) {
        let cm = CostModel::default();
        let model = ModelMeta {
            id: "m".into(),
            kind: ModelKind::Dnn,
            n_stages: 3,
            model_load: Duration::from_millis(5),
            n_examples: 10_000,
            intermediates: vec![],
        };
        let mut meta = IntermediateMeta {
            id: "m.i".into(),
            model_id: "m".into(),
            stage_index: 1,
            n_rows: 10_000,
            columns: vec![],
            scheme: CaptureScheme::full(),
            materialized: true,
            stored_bytes: bytes_per_row * 10_000,
            exec_time: Duration::from_millis(cum_ms),
            cum_exec_time: Duration::from_millis(cum_ms),
            n_queries: q1,
            quantizer: None,
            threshold: None,
            shape: None,
            delta_encoded: false,
        };
        let n2 = n1 + extra;
        prop_assert!(cm.t_read(&meta, n2) >= cm.t_read(&meta, n1));
        prop_assert!(cm.t_rerun(&model, &meta, n2) >= cm.t_rerun(&model, &meta, n1));
        let g1 = cm.gamma(&model, &meta, meta.stored_bytes.max(1));
        meta.n_queries = q1 + 1;
        let g2 = cm.gamma(&model, &meta, meta.stored_bytes.max(1));
        prop_assert!(g2 >= g1, "gamma must grow with queries: {g1} -> {g2}");
    }

    // The read-vs-rerun decision is consistent with the two predictions.
    #[test]
    fn decision_matches_predictions(
        bytes_per_row in 1u64..1_000_000,
        cum_ms in 0u64..1_000_000,
        n in 1usize..10_000,
    ) {
        let cm = CostModel::default();
        let model = ModelMeta {
            id: "m".into(),
            kind: ModelKind::Trad,
            n_stages: 3,
            model_load: Duration::ZERO,
            n_examples: 10_000,
            intermediates: vec![],
        };
        let meta = IntermediateMeta {
            id: "m.i".into(),
            model_id: "m".into(),
            stage_index: 1,
            n_rows: 10_000,
            columns: vec![],
            scheme: CaptureScheme::full(),
            materialized: true,
            stored_bytes: bytes_per_row * 10_000,
            exec_time: Duration::from_millis(cum_ms),
            cum_exec_time: Duration::from_millis(cum_ms),
            n_queries: 0,
            quantizer: None,
            threshold: None,
            shape: None,
            delta_encoded: false,
        };
        let should = cm.should_read(&model, &meta, n);
        prop_assert_eq!(should, cm.t_rerun(&model, &meta, n) >= cm.t_read(&meta, n));
    }

    // POOL_QT: pooling an h×w map with window σ yields exactly
    // ceil(h/σ)·ceil(w/σ) values; averages stay within the map's value
    // range, maxes select actual map elements, and σ=1 is the identity.
    #[test]
    fn pool_qt_bounds_and_shape(
        (h, w, sigma, map) in (1..12usize, 1..12usize, 1..8usize).prop_flat_map(|(h, w, sigma)| {
            let n = h * w;
            (
                Just(h),
                Just(w),
                Just(sigma),
                proptest::collection::vec(-1000.0f32..1000.0, n),
            )
        }),
    ) {
        let (oh, ow) = pooled_dims(h, w, sigma);
        prop_assert_eq!(oh, h.div_ceil(sigma));
        prop_assert_eq!(ow, w.div_ceil(sigma));
        let avg = avg_pool2d(&map, h, w, sigma);
        let max = max_pool2d(&map, h, w, sigma);
        prop_assert_eq!(avg.len(), oh * ow);
        prop_assert_eq!(max.len(), oh * ow);
        let lo = map.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = map.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for &v in &avg {
            // A window average cannot leave the map's range (small slack for
            // f32 summation over windows of up to 7×7 values).
            prop_assert!(v >= lo - 0.5 && v <= hi + 0.5, "avg {} outside [{}, {}]", v, lo, hi);
        }
        for &v in &max {
            prop_assert!(map.contains(&v), "max pooling fabricated {}", v);
        }
        if sigma == 1 {
            prop_assert_eq!(&avg, &map);
            prop_assert_eq!(&max, &map);
        }
    }

    // POOL_QT over a capture batch: the pooled feature count is
    // channels·ceil(h/σ)·ceil(w/σ) for every example.
    #[test]
    fn pool_qt_batch_feature_count(
        (channels, h, w, sigma, examples) in (1..4usize, 1..9usize, 1..9usize, 1..5usize, 1..6usize)
            .prop_flat_map(|(c, h, w, sigma, n)| {
                let len = c * h * w;
                (
                    Just(c),
                    Just(h),
                    Just(w),
                    Just(sigma),
                    proptest::collection::vec(
                        proptest::collection::vec(-100.0f32..100.0, len),
                        n,
                    ),
                )
            }),
    ) {
        let (pooled, out_features) = pool_batch(&examples, channels, h, w, sigma);
        let (oh, ow) = pooled_dims(h, w, sigma);
        prop_assert_eq!(out_features, channels * oh * ow);
        prop_assert_eq!(pooled.len(), examples.len());
        for p in &pooled {
            prop_assert_eq!(p.len(), out_features);
        }
        if sigma == 1 {
            prop_assert_eq!(&pooled, &examples);
        }
    }

    // THRESHOLD_QT: the fitted threshold lies within the sample's value
    // range, encoding is exactly `v > t`, and the packed bitstream
    // roundtrips losslessly.
    #[test]
    fn threshold_qt_fit_and_pack_roundtrip(
        sample in proptest::collection::vec(-1e4f32..1e4, 1..300),
        pct in 0.0f64..=1.0,
    ) {
        let q = ThresholdQuantizer::fit(&sample, pct);
        let t = q.threshold();
        let lo = sample.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = sample.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // Linear interpolation between sorted sample values stays in range
        // (up to f64 → f32 rounding at the edges).
        prop_assert!(
            t >= lo - lo.abs() * 1e-5 - 1e-5 && t <= hi + hi.abs() * 1e-5 + 1e-5,
            "threshold {} outside sample range [{}, {}]", t, lo, hi
        );
        let bits = q.encode(&sample);
        for (&v, &b) in sample.iter().zip(&bits) {
            prop_assert_eq!(b, v > t);
        }
        let packed = q.encode_packed(&sample);
        prop_assert_eq!(packed.len(), sample.len().div_ceil(8), "1 bit per value");
        let unpacked = ThresholdQuantizer::decode_packed(&packed, sample.len());
        prop_assert_eq!(unpacked, Some(bits));
    }

    // THRESHOLD_QT through the capture path: encode_batch binarizes every
    // column as exactly `v > t`, decode_column maps it to {0.0, 1.0}, and
    // re-encoding under the returned threshold is deterministic (the paper:
    // once picked, the threshold is fixed for the intermediate's lifetime).
    #[test]
    fn threshold_qt_capture_roundtrip(
        (n_features, examples) in (1..16usize, 1..8usize).prop_flat_map(|(n, f)| {
            (
                Just(f),
                proptest::collection::vec(
                    proptest::collection::vec(-100.0f32..100.0, f),
                    n,
                ),
            )
        }),
        pct in 0.5f64..1.0,
    ) {
        let scheme = ValueScheme::Threshold { pct };
        let batch = encode_batch(&examples, n_features, scheme, None, None);
        let t = batch.threshold.expect("fresh fit returns its threshold");
        prop_assert_eq!(batch.frame.n_cols(), n_features);
        prop_assert_eq!(batch.frame.n_rows(), examples.len());
        for j in 0..n_features {
            let col = batch.frame.column(&format!("n{j}")).expect("column exists");
            let decoded = decode_column(&col.data, scheme, None);
            for (i, ex) in examples.iter().enumerate() {
                let expected = if ex[j] > t { 1.0 } else { 0.0 };
                prop_assert_eq!(decoded[i], expected, "row {} col {}", i, j);
            }
        }
        let again = encode_batch(&examples, n_features, scheme, None, Some(t));
        prop_assert!(again.threshold.is_none(), "reused threshold is not re-returned");
        prop_assert_eq!(again.frame, batch.frame);
    }

    // Zone maps and max-activation lists over *decoded* values, for every
    // quantization scheme on the demotion ladder: the pruned block set is a
    // superset of the blocks containing matches, and the top list
    // reproduces the scan's exact top-k prefix (bit patterns included)
    // whenever it serves at all.
    #[test]
    fn index_contract_holds_over_every_quantization_scheme(
        raw in proptest::collection::vec(-100.0f32..100.0, 1..160),
        scheme_pick in 0..4usize,
        block in 1..24usize,
        m in 0..16usize,
        k in 0..16usize,
        threshold in -120.0f64..120.0,
    ) {
        let scheme = match scheme_pick {
            0 => ValueScheme::Full,
            1 => ValueScheme::Lp,
            2 => ValueScheme::Kbit { bits: 8 },
            _ => ValueScheme::Threshold { pct: 0.9 },
        };
        let examples: Vec<Vec<f32>> = raw.iter().map(|&v| vec![v]).collect();
        let batch = encode_batch(&examples, 1, scheme, None, None);
        let col = batch.frame.column("n0").expect("one encoded column");
        let decoded = decode_column(&col.data, scheme, batch.quantizer.as_deref());
        prop_assert_eq!(decoded.len(), raw.len());

        let mut b = mistique_index::IndexBuilder::new(m, block);
        for (i, chunk) in decoded.chunks(block).enumerate() {
            b.observe_block("n0", i, chunk);
        }
        let idx = b.finish("m.i", &scheme.name(), decoded.len(), 1);

        // Threshold pruning over the decoded domain.
        let (keep, total) = idx.blocks_passing_gt("n0", threshold).expect("column indexed");
        prop_assert_eq!(total, decoded.len().div_ceil(block));
        for (row, v) in decoded.iter().enumerate() {
            if *v > threshold {
                prop_assert!(
                    keep.contains(&(row / block)),
                    "row {} (decoded {}) matches but its block was pruned", row, v
                );
            }
        }

        // Top list vs the scan reference, bit for bit.
        if let Some(served) = idx.topk("n0", k) {
            let want = mistique_index::reference_topk(&decoded, k);
            prop_assert_eq!(served.len(), want.len());
            for (a, b) in served.iter().zip(&want) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        } else {
            prop_assert!(k > m && decoded.len() > m, "refusal only when the list cannot prove the prefix");
        }
    }

    // NaN / ±inf / constant columns: zone maps must neither fabricate nor
    // lose matches when a block is all-NaN, all-constant, or spans the
    // infinities, and the top list must still mirror the scan order.
    #[test]
    fn index_specials_and_constant_columns(
        vals in proptest::collection::vec(
            prop_oneof![
                4 => -1e6f64..1e6,
                1 => Just(f64::NAN),
                1 => Just(f64::INFINITY),
                1 => Just(f64::NEG_INFINITY),
                2 => Just(42.0),
            ],
            1..120,
        ),
        block in 1..16usize,
        threshold in prop_oneof![
            3 => -1e6f64..1e6,
            1 => Just(f64::NEG_INFINITY),
            1 => Just(f64::INFINITY),
            1 => Just(42.0),
        ],
    ) {
        for column in [vals.clone(), vec![42.0f64; vals.len()]] {
            let mut b = mistique_index::IndexBuilder::new(8, block);
            for (i, chunk) in column.chunks(block).enumerate() {
                b.observe_block("c", i, chunk);
            }
            let idx = b.finish("m.i", "FULL", column.len(), 1);

            let (keep, _) = idx.blocks_passing_gt("c", threshold).expect("column indexed");
            for (row, v) in column.iter().enumerate() {
                // NaN never matches `>`; pruning may only discard blocks
                // whose non-NaN max cannot clear the threshold.
                if *v > threshold {
                    prop_assert!(keep.contains(&(row / block)));
                }
            }

            if let Some(served) = idx.topk("c", 8) {
                let want = mistique_index::reference_topk(&column, 8);
                prop_assert_eq!(served.len(), want.len());
                for (a, b) in served.iter().zip(&want) {
                    prop_assert_eq!(a.0, b.0);
                    prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
        }
    }

    // Base+delta frames are bit-exact for arbitrary target/base byte pairs,
    // including length mismatches in either direction (the XOR residual
    // passes the tail through past the shorter stream).
    #[test]
    fn basedelta_roundtrip_arbitrary_bytes(
        target in proptest::collection::vec(any::<u8>(), 0..600),
        base in proptest::collection::vec(any::<u8>(), 0..600),
        digest in (any::<u64>(), any::<u64>()),
    ) {
        let frame = basedelta::encode(&target, &base, digest);
        prop_assert!(basedelta::is_delta_frame(&frame));
        prop_assert_eq!(basedelta::base_digest_of(&frame), Some(digest));
        prop_assert_eq!(basedelta::decode(&frame, &base, digest).unwrap(), target);
    }

    // Float payloads with NaN / ±inf survive the delta frame bit for bit —
    // the codec works on raw bytes, so no float semantics can leak in.
    #[test]
    fn basedelta_roundtrip_float_specials(
        vals in proptest::collection::vec(
            prop_oneof![
                5 => -1e30f32..1e30,
                1 => Just(f32::NAN),
                1 => Just(f32::INFINITY),
                1 => Just(f32::NEG_INFINITY),
                1 => Just(-0.0f32),
            ],
            1..200,
        ),
        flip_every in 1..32usize,
    ) {
        let base: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut target = base.clone();
        for (i, b) in target.iter_mut().enumerate() {
            if i % flip_every == 0 {
                *b = b.wrapping_add(1);
            }
        }
        let digest = (7u64, 9u64);
        let frame = basedelta::encode(&target, &base, digest);
        prop_assert_eq!(basedelta::decode(&frame, &base, digest).unwrap(), target);
    }

    // A frame never decodes against the wrong base: a different digest is
    // refused, and a base of a different length is refused.
    #[test]
    fn basedelta_wrong_base_rejected(
        target in proptest::collection::vec(any::<u8>(), 1..300),
        base in proptest::collection::vec(any::<u8>(), 1..300),
        digest in (any::<u64>(), any::<u64>()),
        other in (any::<u64>(), any::<u64>()),
    ) {
        let frame = basedelta::encode(&target, &base, digest);
        if other != digest {
            prop_assert!(basedelta::decode(&frame, &base, other).is_err());
        }
        let truncated_base = &base[..base.len() - 1];
        prop_assert!(basedelta::decode(&frame, truncated_base, digest).is_err());
    }
}
