//! Randomized stress test of the DataStore: a mixed workload of puts
//! (duplicates, near-duplicates, unrelated data, mixed dtypes) under a tiny
//! buffer pool, then every key read back — warm, cold, and after reopen.

use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig};
use mistique_dataframe::{ColumnChunk, ColumnData};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;
use mistique_store::{ChunkKey, DataStore, DataStoreConfig, PlacementPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_chunk(rng: &mut StdRng, base: &[f64]) -> ColumnChunk {
    match rng.gen_range(0..5) {
        0 => {
            // Exact duplicate of the base column.
            ColumnChunk::new(ColumnData::F64(base.to_vec()))
        }
        1 => {
            // Near-duplicate: one perturbed value.
            let mut v = base.to_vec();
            let i = rng.gen_range(0..v.len());
            v[i] += 0.001;
            ColumnChunk::new(ColumnData::F64(v))
        }
        2 => {
            let v: Vec<f64> = (0..base.len()).map(|_| rng.gen_range(-1e6..1e6)).collect();
            ColumnChunk::new(ColumnData::F64(v))
        }
        3 => {
            let v: Vec<u8> = (0..base.len()).map(|_| rng.gen()).collect();
            ColumnChunk::new(ColumnData::U8(v))
        }
        _ => {
            let v: Vec<i64> = (0..base.len())
                .map(|_| rng.gen_range(-1000..1000))
                .collect();
            ColumnChunk::new(ColumnData::I64(v))
        }
    }
}

#[test]
fn mixed_workload_under_eviction_pressure() {
    let dir = tempfile::tempdir().unwrap();
    let config = DataStoreConfig {
        policy: PlacementPolicy::BySimilarity { tau: 0.6 },
        // Tiny pool + small partitions: constant eviction and sealing.
        mem_capacity: 32 << 10,
        partition_target_bytes: 8 << 10,
        ..DataStoreConfig::default()
    };
    let mut store = DataStore::open(dir.path(), config).unwrap();

    let mut rng = StdRng::seed_from_u64(77);
    let base: Vec<f64> = (0..200).map(|i| i as f64 * 0.5).collect();

    let mut written: Vec<(ChunkKey, ColumnChunk)> = Vec::new();
    for i in 0..300 {
        let chunk = random_chunk(&mut rng, &base);
        let key = ChunkKey::new(
            format!("m{}.i{}", i % 7, i % 13),
            format!("c{i}"),
            (i % 3) as u32,
        );
        store.put_chunk(key.clone(), &chunk).unwrap();
        written.push((key, chunk));
    }

    // Warm reads: every key returns its exact chunk.
    for (key, chunk) in &written {
        assert_eq!(&store.get_chunk(key).unwrap(), chunk, "warm {key:?}");
    }

    // Cold reads after flushing everything to disk.
    store.flush().unwrap();
    store.clear_read_cache();
    for (key, chunk) in &written {
        assert_eq!(&store.get_chunk(key).unwrap(), chunk, "cold {key:?}");
    }

    // Catalog export/import into a fresh store over the same directory.
    let catalog = store.export_catalog();
    drop(store);
    let mut reopened = DataStore::open(
        dir.path(),
        DataStoreConfig {
            policy: PlacementPolicy::BySimilarity { tau: 0.6 },
            ..DataStoreConfig::default()
        },
    )
    .unwrap();
    reopened.import_catalog(catalog);
    for (key, chunk) in &written {
        assert_eq!(&reopened.get_chunk(key).unwrap(), chunk, "reopened {key:?}");
    }

    // Accounting sanity: duplicates were deduped, all bytes accounted.
    let stats = reopened.stats();
    assert!(
        stats.dedup_hits > 0,
        "exact duplicates in the workload must dedup"
    );
    assert!(stats.unique_bytes <= stats.logical_bytes);
    assert_eq!(stats.chunks_stored + stats.dedup_hits, 300);
}

#[test]
fn parallel_read_stored_is_byte_identical_to_serial() {
    // Cold reads through the concurrent read path must reproduce the serial
    // result bit-for-bit at every worker count (including 0 = one per CPU).
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(dir.path(), MistiqueConfig::default()).unwrap();
    let data = Arc::new(ZillowData::generate(400, 7));
    let id = sys
        .register_trad(zillow_pipelines().remove(0), data)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    sys.store_mut().flush().unwrap();

    for interm in sys.intermediates_of(&id) {
        sys.set_read_parallelism(1);
        sys.store_mut().clear_read_cache();
        let serial = sys
            .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
            .unwrap()
            .frame;
        for workers in [2usize, 4, 0] {
            sys.set_read_parallelism(workers);
            sys.store_mut().clear_read_cache();
            let par = sys
                .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
                .unwrap()
                .frame;
            assert_eq!(serial.n_rows(), par.n_rows(), "{interm} workers={workers}");
            for col in serial.columns() {
                let a = col.data.to_f64();
                let b = par.column(&col.name).unwrap().data.to_f64();
                assert_eq!(a.len(), b.len(), "{interm} col {}", col.name);
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{interm} col {} row {i} workers={workers}",
                        col.name
                    );
                }
            }
        }
    }

    // The sparse row-fetch path shares the same fan-out: spot-check it too.
    let interm = sys.intermediates_of(&id).pop().unwrap();
    let n_rows = sys.metadata().intermediate(&interm).unwrap().n_rows;
    let rows = [0, 7, n_rows / 2, n_rows - 1];
    sys.set_read_parallelism(1);
    sys.store_mut().clear_read_cache();
    let serial = sys.get_rows(&interm, &rows, None).unwrap().frame;
    sys.set_read_parallelism(4);
    sys.store_mut().clear_read_cache();
    let par = sys.get_rows(&interm, &rows, None).unwrap().frame;
    assert_eq!(serial.n_rows(), par.n_rows());
    for col in serial.columns() {
        let a = col.data.to_f64();
        let b = par.column(&col.name).unwrap().data.to_f64();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "get_rows col {}", col.name);
        }
    }
}

#[test]
fn same_key_rewritten_with_new_content_resolves_to_latest() {
    let dir = tempfile::tempdir().unwrap();
    let mut store = DataStore::open(dir.path(), DataStoreConfig::default()).unwrap();
    let key = ChunkKey::new("m.i", "c", 0);
    let first = ColumnChunk::new(ColumnData::F64(vec![1.0, 2.0]));
    let second = ColumnChunk::new(ColumnData::F64(vec![3.0, 4.0]));
    store.put_chunk(key.clone(), &first).unwrap();
    store.put_chunk(key.clone(), &second).unwrap();
    assert_eq!(store.get_chunk(&key).unwrap(), second);
}
