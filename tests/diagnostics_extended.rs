//! Integration tests for the extended diagnostics (confusion matrix,
//! accuracy, grouped metrics) on a logged DNN system.

use std::sync::Arc;

use mistique_core::{Mistique, MistiqueConfig};
use mistique_nn::{simple_cnn, CifarLike};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn dnn() -> (tempfile::TempDir, Mistique, String, Arc<CifarLike>) {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            row_block_size: 16,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(CifarLike::generate(40, 10, 3));
    let id = sys
        .register_dnn(Arc::new(simple_cnn(16)), 5, 0, Arc::clone(&data), 16)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    (dir, sys, id, data)
}

#[test]
fn confusion_matrix_counts_all_examples() {
    let (_d, mut sys, id, data) = dnn();
    let n_layers = sys.intermediates_of(&id).len();
    let softmax = format!("{id}.layer{n_layers}");
    let cm = sys.confusion_matrix(&softmax, &data.labels, 10).unwrap();
    let total: usize = cm.iter().flat_map(|row| row.iter()).sum();
    assert_eq!(total, 40);
    // Diagonal + accuracy agree.
    let diag: usize = (0..10).map(|i| cm[i][i]).sum();
    let acc = sys.accuracy(&softmax, &data.labels).unwrap();
    assert!((acc - diag as f64 / 40.0).abs() < 1e-12);
}

#[test]
fn argmax_is_consistent_with_scores() {
    let (_d, mut sys, id, _) = dnn();
    let n_layers = sys.intermediates_of(&id).len();
    let softmax = format!("{id}.layer{n_layers}");
    let preds = sys.argmax_predictions(&softmax).unwrap();
    let frame = sys.get_intermediate(&softmax, None, None).unwrap().frame;
    let cols: Vec<Vec<f64>> = frame.columns().iter().map(|c| c.data.to_f64()).collect();
    for (i, &p) in preds.iter().enumerate() {
        for c in &cols {
            assert!(cols[p][i] >= c[i], "row {i}");
        }
    }
}

#[test]
fn class_out_of_range_is_an_error() {
    let (_d, mut sys, id, data) = dnn();
    let n_layers = sys.intermediates_of(&id).len();
    let softmax = format!("{id}.layer{n_layers}");
    assert!(sys.confusion_matrix(&softmax, &data.labels, 3).is_err());
}

#[test]
fn group_metric_on_zillow_predictions() {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(dir.path(), MistiqueConfig::default()).unwrap();
    let data = Arc::new(ZillowData::generate(400, 1));
    let id = sys
        .register_trad(zillow_pipelines().remove(0), Arc::clone(&data))
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    let preds = sys.intermediates_of(&id).last().unwrap().clone();

    // Group predictions by a synthetic 3-way split of homes.
    let n = sys.metadata().intermediate(&preds).unwrap().n_rows;
    let groups: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
    let rows = sys.group_metric(&preds, "pred", &groups, 3).unwrap();
    assert_eq!(rows.len(), 3);
    let total: usize = rows.iter().map(|(_, _, c)| c).sum();
    assert_eq!(total, n);
    for (_, mean, count) in rows {
        assert!(count > 0);
        assert!(mean.is_finite());
    }
    // Out-of-range group id errors.
    let bad = vec![9u8; n];
    assert!(sys.group_metric(&preds, "pred", &bad, 3).is_err());
}
