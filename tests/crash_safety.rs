//! Crash-simulation driver: enumerate a simulated power cut at **every**
//! backend syscall of a log → persist → reopen run and assert the store
//! always recovers to a consistent pre- or post-persist state — never a torn
//! one.
//!
//! Two layers:
//!
//! 1. **Store-level** ([`every_crash_point_leaves_datastore_consistent`]):
//!    a `DataStore` workload over [`FaultyFs`], no JSON involved — the chunk
//!    catalog is carried in memory across the simulated restart. Runs in any
//!    environment.
//! 2. **System-level** ([`every_crash_point_leaves_manifest_consistent`]):
//!    the full `Mistique` two-phase persist workload, crashing between and
//!    inside both persists. Requires a working JSON serializer and skips
//!    (with a note) where `persist()` cannot serialize the manifest.
//!
//! Each crash point is replayed under all three [`TornWrite`] policies, so
//! unsynced data may vanish, survive, or survive only as a prefix — the
//! three behaviours a real disk exhibits after power loss.

use std::path::PathBuf;
use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig, MistiqueError};
use mistique_dataframe::{ColumnChunk, ColumnData, DataFrame};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;
use mistique_store::{
    ChunkKey, DataStore, DataStoreConfig, FaultyFs, PlacementPolicy, StoreError, TornWrite,
};

const POLICIES: [TornWrite; 3] = [TornWrite::DropAll, TornWrite::TornHalf, TornWrite::KeepAll];

fn store_config() -> DataStoreConfig {
    DataStoreConfig {
        policy: PlacementPolicy::ByIntermediate,
        mem_capacity: 1 << 20,
        // Small target so the workload seals several partitions mid-run.
        partition_target_bytes: 2048,
        ..DataStoreConfig::default()
    }
}

fn chunk(seed: u64, len: usize) -> ColumnChunk {
    let vals: Vec<f64> = (0..len)
        .map(|i| ((seed.wrapping_mul(31).wrapping_add(i as u64)) % 997) as f64 * 0.5)
        .collect();
    ColumnChunk::new(ColumnData::F64(vals))
}

fn workload_keys() -> Vec<(ChunkKey, ColumnChunk)> {
    let mut out = Vec::new();
    for interm in 0..3u64 {
        for block in 0..3u32 {
            out.push((
                ChunkKey::new(format!("m.i{interm}"), "c", block),
                chunk(interm * 10 + block as u64, 300),
            ));
        }
    }
    out
}

/// Run the store workload: put every chunk, then flush. Returns the exported
/// catalog on success.
fn run_store_workload(
    ds: &mut DataStore,
) -> Result<mistique_store::datastore::StoreCatalog, StoreError> {
    for (key, chunk) in workload_keys() {
        ds.put_chunk(key, &chunk)?;
    }
    ds.flush()?;
    Ok(ds.export_catalog())
}

#[test]
fn every_crash_point_leaves_datastore_consistent() {
    // Golden run on a pristine virtual disk: total op count and the catalog
    // the workload produces (placement is deterministic, so the catalog is
    // identical across runs of the same workload).
    let (golden_catalog, open_ops, total_ops) = {
        let fs = FaultyFs::new();
        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        let open_ops = fs.op_count();
        let catalog = run_store_workload(&mut ds).unwrap();
        (catalog, open_ops, fs.op_count())
    };
    let golden: Vec<(ChunkKey, ColumnChunk)> = workload_keys();
    assert!(total_ops > open_ops + 10, "workload must exercise the disk");

    for k in (open_ops + 1)..=total_ops {
        for policy in POLICIES {
            let fs = FaultyFs::new();
            let mut ds =
                DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
            fs.crash_after(k);
            let r = run_store_workload(&mut ds);
            assert!(r.is_err(), "crash at op {k} must surface as an error");
            assert!(fs.has_crashed());
            drop(ds); // the crashed process is gone
            fs.power_cut(policy);

            // Files on the virtual disk before recovery, for accounting.
            let files = fs.visible_files();
            let n_tmp = files
                .iter()
                .filter(|p| p.to_string_lossy().ends_with(".tmp"))
                .count() as u64;
            let n_part = files
                .iter()
                .filter(|p| {
                    let n = p.file_name().unwrap().to_string_lossy().into_owned();
                    n.starts_with("part_") && n.ends_with(".bin")
                })
                .count() as u64;

            // "Restart": fresh store over the same disk, catalog restored
            // from the golden run (stands in for the manifest).
            let mut ds =
                DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
            ds.import_catalog(golden_catalog.clone());
            let report = ds.recover().unwrap();

            // The atomic writer never leaves a torn partition file: every
            // part_*.bin on disk verifies, none is quarantined.
            assert_eq!(
                report.quarantined, 0,
                "crash at op {k} ({policy:?}) left a torn partition"
            );
            // Recovery accounts for every file that was in the directory.
            assert_eq!(report.partitions_ok, n_part, "crash at {k} ({policy:?})");
            assert_eq!(report.orphans_removed, n_tmp, "crash at {k} ({policy:?})");
            assert!(
                !fs.visible_files()
                    .iter()
                    .any(|p| p.to_string_lossy().ends_with(".tmp")),
                "recovery must remove every orphan (crash at {k}, {policy:?})"
            );

            // Every chunk reads back bit-identical, or its partition is
            // cleanly missing — never garbage, never a decode error.
            for (key, expected) in &golden {
                match ds.get_chunk(key) {
                    Ok(got) => {
                        assert_eq!(&got, expected, "crash at {k} ({policy:?}): torn read")
                    }
                    Err(StoreError::NotFound) => {}
                    Err(e) => panic!("crash at {k} ({policy:?}): unexpected error {e}"),
                }
            }
        }
    }

    // With the workload fully completed, a power cut under any policy loses
    // nothing: every write was fsynced through before the store returned.
    for policy in POLICIES {
        let fs = FaultyFs::new();
        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        run_store_workload(&mut ds).unwrap();
        drop(ds);
        fs.power_cut(policy);
        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        ds.import_catalog(golden_catalog.clone());
        let report = ds.recover().unwrap();
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.missing, 0, "completed workload is fully durable");
        for (key, expected) in &golden {
            assert_eq!(&ds.get_chunk(key).unwrap(), expected, "{policy:?}");
        }
    }
}

#[test]
fn transient_io_errors_surface_without_poisoning_the_store() {
    // A one-shot EIO / ENOSPC during the workload is reported as an error;
    // the store stays usable and previously sealed data stays readable.
    for kind in [
        std::io::ErrorKind::Other,       // EIO-style
        std::io::ErrorKind::StorageFull, // ENOSPC
    ] {
        let fs = FaultyFs::new();
        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        // Land the fault somewhere inside the workload's disk activity.
        let target = fs.op_count() + 12;
        fs.inject_error(target, kind);
        let r = run_store_workload(&mut ds);
        assert!(r.is_err(), "injected {kind:?} must surface");
        assert!(!fs.has_crashed(), "transient fault is not a crash");

        // The store is still alive: new writes and a flush succeed...
        let key = ChunkKey::new("after.fault", "c", 0);
        ds.put_chunk(key.clone(), &chunk(99, 300)).unwrap();
        ds.flush().unwrap();
        assert_eq!(ds.get_chunk(&key).unwrap(), chunk(99, 300));
        // ...and recovery finds no torn files.
        let report = ds.recover().unwrap();
        assert_eq!(report.quarantined, 0);
    }
}

// ---------------------------------------------------------------------------
// System-level: the full Mistique persist/reopen cycle.
// ---------------------------------------------------------------------------

fn sys_config() -> MistiqueConfig {
    MistiqueConfig {
        row_block_size: 50,
        ..MistiqueConfig::default()
    }
}

/// Fetch the golden frame of a model's last intermediate (its predictions).
fn preds_frame(sys: &mut Mistique, model_id: &str) -> DataFrame {
    let preds = sys.intermediates_of(model_id).last().unwrap().clone();
    sys.fetch_with_strategy(&preds, None, None, FetchStrategy::Read)
        .unwrap()
        .frame
}

#[test]
fn every_crash_point_leaves_manifest_consistent() {
    let data = Arc::new(ZillowData::generate(80, 1));
    let pipes = zillow_pipelines();
    let pipe_a = pipes[0].clone();
    let pipe_b = pipes[1].clone();

    // Golden run: two phases, each ending in a persist. Records the op
    // boundaries and the expected prediction frames of both versions.
    let fs = FaultyFs::new();
    let mut sys = Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
    let open_ops = fs.op_count();
    let id_a = sys
        .register_trad(pipe_a.clone(), Arc::clone(&data))
        .unwrap();
    sys.log_intermediates(&id_a).unwrap();
    match sys.persist() {
        Ok(()) => {}
        Err(MistiqueError::Invalid(msg)) if msg.contains("manifest serialize") => {
            // No JSON serializer in this build; the store-level enumeration
            // above still covers the crash machinery.
            eprintln!("note: skipping manifest crash enumeration: {msg}");
            return;
        }
        Err(e) => panic!("golden persist failed: {e}"),
    }
    let k1 = fs.op_count();
    let id_b = sys
        .register_trad(pipe_b.clone(), Arc::clone(&data))
        .unwrap();
    sys.log_intermediates(&id_b).unwrap();
    sys.persist().unwrap();
    let total = fs.op_count();
    let golden_a = preds_frame(&mut sys, &id_a);
    let golden_b = preds_frame(&mut sys, &id_b);
    drop(sys);
    assert!(open_ops < k1 && k1 < total);

    for k in (open_ops + 1)..=total {
        for policy in POLICIES {
            let fs = FaultyFs::new();
            let mut sys =
                Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
            fs.crash_after(k);
            let r = (|| -> Result<(), MistiqueError> {
                let a = sys.register_trad(pipe_a.clone(), Arc::clone(&data))?;
                sys.log_intermediates(&a)?;
                sys.persist()?;
                let b = sys.register_trad(pipe_b.clone(), Arc::clone(&data))?;
                sys.log_intermediates(&b)?;
                sys.persist()
            })();
            assert!(r.is_err(), "crash at op {k} must surface");
            drop(sys);
            fs.power_cut(policy);

            match Mistique::reopen_with_backend("/vfs", sys_config(), Arc::new(fs.clone())) {
                Err(MistiqueError::NoManifest) => {
                    // Legal only while the first manifest was not yet
                    // guaranteed durable.
                    assert!(
                        k <= k1,
                        "crash at {k} ({policy:?}): manifest v1 was durable by op {k1} \
                         but reopen found none"
                    );
                }
                Ok(mut sys) => {
                    let report = sys.recovery_report().unwrap();
                    assert_eq!(
                        report.quarantined, 0,
                        "crash at {k} ({policy:?}) left a torn partition"
                    );
                    assert_eq!(
                        report.missing, 0,
                        "crash at {k} ({policy:?}): the \
                         manifest only ever references partitions persisted before it"
                    );
                    let models = sys.model_ids();
                    match models.len() {
                        // Manifest v1: model A exactly as persisted.
                        1 => {
                            assert_eq!(models[0], id_a, "crash at {k} ({policy:?})");
                            assert_eq!(
                                preds_frame(&mut sys, &id_a),
                                golden_a,
                                "crash at {k} ({policy:?}): v1 state torn"
                            );
                        }
                        // Manifest v2: both models, both readable.
                        2 => {
                            assert_eq!(
                                preds_frame(&mut sys, &id_a),
                                golden_a,
                                "crash at {k} ({policy:?})"
                            );
                            assert_eq!(
                                preds_frame(&mut sys, &id_b),
                                golden_b,
                                "crash at {k} ({policy:?})"
                            );
                        }
                        n => panic!("crash at {k} ({policy:?}): {n} models restored"),
                    }
                }
                Err(e) => panic!("crash at {k} ({policy:?}): reopen failed: {e}"),
            }
        }
    }
}

#[test]
fn quarantined_partition_reported_and_isolated_after_reopen() {
    // Bitrot (not crash) on one partition: reopen quarantines exactly that
    // partition, reads of its chunks fail with a quarantine error, and the
    // other partitions stay readable.
    let data = Arc::new(ZillowData::generate(80, 1));
    let fs = FaultyFs::new();
    let mut sys = Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
    let id = sys
        .register_trad(zillow_pipelines().remove(0), Arc::clone(&data))
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    if let Err(MistiqueError::Invalid(msg)) = sys.persist() {
        eprintln!("note: skipping quarantine reopen test: {msg}");
        return;
    }
    drop(sys);

    // Flip a byte in the middle of the first partition file.
    let part_files: Vec<PathBuf> = fs
        .visible_files()
        .into_iter()
        .filter(|p| {
            let n = p.file_name().unwrap().to_string_lossy().into_owned();
            n.starts_with("part_") && n.ends_with(".bin")
        })
        .collect();
    assert!(
        part_files.len() >= 2,
        "workload must span several partitions"
    );
    fs.corrupt_durable(&part_files[0], |bytes| {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
    });

    let mut sys =
        Mistique::reopen_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
    let report = sys.recovery_report().unwrap();
    assert_eq!(report.quarantined, 1);
    assert_eq!(report.partitions_ok, part_files.len() as u64 - 1);

    // Sweep the intermediates: at least one fetch fails with a quarantine
    // error naming the corruption, and at least one succeeds.
    let mut ok = 0;
    let mut quarantined = 0;
    for interm in sys.intermediates_of(&id) {
        match sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read) {
            Ok(_) => ok += 1,
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("quarantined"),
                    "expected quarantine error, got: {msg}"
                );
                quarantined += 1;
            }
        }
    }
    assert!(ok > 0, "healthy partitions must stay readable");
    assert!(quarantined > 0, "corrupt partition must fail loudly");
}
