//! Integration: the full TRAD path — 50-pipeline workload, logging, dedup,
//! cost-based fetching, and diagnostics, spanning every crate.

use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig, StorageStrategy};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn system(
    strategy: StorageStrategy,
    n_pipelines: usize,
) -> (tempfile::TempDir, Mistique, Vec<String>) {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            storage: strategy,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(ZillowData::generate(600, 42));
    let mut ids = Vec::new();
    for p in zillow_pipelines().into_iter().take(n_pipelines) {
        let id = sys.register_trad(p, Arc::clone(&data)).unwrap();
        sys.log_intermediates(&id).unwrap();
        ids.push(id);
    }
    (dir, sys, ids)
}

#[test]
fn five_variants_share_storage() {
    // P1_v0..P1_v4 differ only in hyper-parameters: everything up to the
    // train stage dedups, so unique bytes grow sublinearly.
    let (_d, sys, ids) = system(StorageStrategy::Dedup, 5);
    assert_eq!(ids.len(), 5);
    let stats = sys.store().stats();
    assert!(stats.dedup_hits > 0);
    assert!(
        stats.unique_bytes * 3 < stats.logical_bytes,
        "5 variants should dedup to well under half: {} of {}",
        stats.unique_bytes,
        stats.logical_bytes
    );
}

#[test]
fn every_intermediate_reads_back_equal_to_rerun() {
    let (_d, mut sys, ids) = system(StorageStrategy::Dedup, 1);
    let interms = sys.intermediates_of(&ids[0]);
    for interm in &interms {
        let read = sys
            .fetch_with_strategy(interm, None, None, FetchStrategy::Read)
            .unwrap();
        let rerun = sys
            .fetch_with_strategy(interm, None, None, FetchStrategy::Rerun)
            .unwrap();
        assert_eq!(read.frame.n_rows(), rerun.frame.n_rows(), "{interm}");
        for col in read.frame.columns() {
            let a = col.data.to_f64();
            let b = rerun.frame.column(&col.name).unwrap().data.to_f64();
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x - y).abs() < 1e-9 || (x.is_nan() && y.is_nan()),
                    "{interm} col {}: {x} vs {y}",
                    col.name
                );
            }
        }
    }
}

#[test]
fn cold_reads_work_after_flush() {
    let (_d, mut sys, ids) = system(StorageStrategy::Dedup, 2);
    sys.flush().unwrap();
    assert!(sys.store().disk_bytes().unwrap() > 0);
    for id in &ids {
        let preds = sys.intermediates_of(id).last().unwrap().clone();
        sys.store_mut().clear_read_cache();
        let r = sys
            .fetch_with_strategy(&preds, Some(&["pred"]), None, FetchStrategy::Read)
            .unwrap();
        assert!(r.frame.n_rows() > 0);
        assert!(r.frame.columns()[0]
            .data
            .to_f64()
            .iter()
            .all(|v| v.is_finite()));
    }
}

#[test]
fn cost_model_prefers_read_for_deep_stages() {
    let (_d, mut sys, ids) = system(StorageStrategy::Dedup, 1);
    // The final prediction stage re-runs the whole pipeline incl. training:
    // reading must win by prediction and by measurement.
    let preds = sys.intermediates_of(&ids[0]).last().unwrap().clone();
    let r = sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap();
    assert_eq!(r.strategy, FetchStrategy::Read);
    assert!(r.predicted_rerun > r.predicted_read);
}

#[test]
fn diagnostics_run_end_to_end() {
    let (_d, mut sys, ids) = system(StorageStrategy::Dedup, 2);
    let interms = sys.intermediates_of(&ids[0]);
    let raw = interms[0].clone();
    let preds_a = interms.last().unwrap().clone();
    let preds_b = sys.intermediates_of(&ids[1]).last().unwrap().clone();

    assert!(sys.pointq(&raw, "sqft", 0).unwrap() > 0.0);
    assert_eq!(sys.topk(&raw, "sqft", 3).unwrap().len(), 3);
    let hist = sys.col_dist(&raw, "tax_value", 5).unwrap();
    assert_eq!(hist.iter().map(|b| b.count).sum::<usize>(), 600);
    let diff = sys
        .col_diff(&preds_a, "pred", &preds_b, "pred", 1e-12)
        .unwrap();
    assert!(!diff.is_empty());
    let knn = sys.knn(&raw, 5, 4).unwrap();
    assert_eq!(knn.len(), 4);
    let rd = sys.row_diff(&raw, 0, 1).unwrap();
    assert_eq!(rd.len(), 9);
}

#[test]
fn nostore_everything_still_answerable() {
    // With NoStore, every query re-runs — results must still be correct.
    let (_d, mut sys, ids) = system(StorageStrategy::NoStore, 1);
    assert_eq!(sys.store().stats().chunks_stored, 0);
    let preds = sys.intermediates_of(&ids[0]).last().unwrap().clone();
    let r = sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap();
    assert_eq!(r.strategy, FetchStrategy::Rerun);
    assert!(r.frame.columns()[0]
        .data
        .to_f64()
        .iter()
        .all(|v| v.is_finite()));
}

#[test]
fn adaptive_converges_to_read_dominated_workload() {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            storage: StorageStrategy::Adaptive { gamma_min: 1e-12 },
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(ZillowData::generate(400, 42));
    let id = sys
        .register_trad(zillow_pipelines().remove(0), data)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    let mut strategies = Vec::new();
    for _ in 0..3 {
        strategies.push(sys.get_intermediate(&preds, None, None).unwrap().strategy);
    }
    assert_eq!(strategies[0], FetchStrategy::Rerun);
    assert_eq!(
        strategies[2],
        FetchStrategy::Read,
        "hot intermediate materialized"
    );
}
