//! Integration tests for the session query cache (Sec 10 future-work
//! extension): repeated fetches in a diagnosis session are served from
//! memory, and the cache never changes answers.

use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig, StorageStrategy};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn cached_system(cache_bytes: usize) -> (tempfile::TempDir, Mistique, String) {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            query_cache_bytes: cache_bytes,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(ZillowData::generate(300, 1));
    let id = sys
        .register_trad(zillow_pipelines().remove(0), data)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    (dir, sys, id)
}

#[test]
fn second_identical_fetch_is_cached_and_equal() {
    let (_d, mut sys, id) = cached_system(16 << 20);
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    let first = sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap();
    assert_ne!(first.strategy, FetchStrategy::Cached);
    let second = sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap();
    assert_eq!(second.strategy, FetchStrategy::Cached);
    assert_eq!(first.frame, second.frame);
    assert_eq!(sys.query_cache().hits(), 1);
    // Query accounting still advances on cached hits.
    assert_eq!(sys.metadata().intermediate(&preds).unwrap().n_queries, 2);
}

#[test]
fn different_requests_are_different_entries() {
    let (_d, mut sys, id) = cached_system(16 << 20);
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap();
    // Different column set / row count => cache miss.
    let all = sys.get_intermediate(&preds, None, None).unwrap();
    assert_ne!(all.strategy, FetchStrategy::Cached);
    let part = sys
        .get_intermediate(&preds, Some(&["pred"]), Some(10))
        .unwrap();
    assert_ne!(part.strategy, FetchStrategy::Cached);
    // But repeating each exact request hits.
    assert_eq!(
        sys.get_intermediate(&preds, None, None).unwrap().strategy,
        FetchStrategy::Cached
    );
}

#[test]
fn full_frame_requests_share_one_entry_regardless_of_n_spelling() {
    // `None`, `Some(n_rows)`, and an oversized `Some(n)` all denote the full
    // frame; the cache key is built from the clamped row count so the three
    // spellings share a single entry instead of caching the frame thrice.
    let (_d, mut sys, id) = cached_system(16 << 20);
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    let n_rows = sys.metadata().intermediate(&preds).unwrap().n_rows;

    let first = sys.get_intermediate(&preds, None, None).unwrap();
    assert_ne!(first.strategy, FetchStrategy::Cached);
    let exact = sys.get_intermediate(&preds, None, Some(n_rows)).unwrap();
    assert_eq!(exact.strategy, FetchStrategy::Cached);
    let oversized = sys
        .get_intermediate(&preds, None, Some(n_rows * 10))
        .unwrap();
    assert_eq!(oversized.strategy, FetchStrategy::Cached);
    assert_eq!(sys.query_cache().hits(), 2);
    assert_eq!(first.frame, exact.frame);
    assert_eq!(first.frame, oversized.frame);

    // A strict prefix is a genuinely different request.
    let small = sys.get_intermediate(&preds, None, Some(10)).unwrap();
    assert_ne!(small.strategy, FetchStrategy::Cached);
    assert_eq!(small.frame.n_rows(), 10);
}

#[test]
fn cache_disabled_by_default() {
    let (_d, mut sys, id) = cached_system(0);
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    for _ in 0..3 {
        let r = sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap();
        assert_ne!(r.strategy, FetchStrategy::Cached);
    }
    assert_eq!(sys.query_cache().hits(), 0);
}

#[test]
fn obs_counters_track_cache_activity() {
    let (_d, mut sys, id) = cached_system(16 << 20);
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap(); // miss
    sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap(); // hit
    let snap = sys.obs_snapshot();
    assert_eq!(snap.counter("qcache.hits"), 1);
    assert!(snap.counter("qcache.misses") >= 1);
    assert_eq!(snap.counter("decision.cached.count"), 1);
    assert!(snap.gauge("qcache.used_bytes") > 0.0);
    // The obs view agrees with the cache's own accounting.
    assert_eq!(snap.counter("qcache.hits"), sys.query_cache().hits());
    assert_eq!(snap.counter("qcache.misses"), sys.query_cache().misses());
}

#[test]
fn obs_counts_evictions_under_pressure() {
    // A budget big enough for roughly one full-frame entry: inserting a
    // second distinct entry must evict the first, and the obs counter
    // tracks the cache's own eviction count.
    let (_d, mut sys, id) = cached_system(96 << 10);
    let interms = sys.intermediates_of(&id);
    for interm in interms.iter().take(4) {
        let _ = sys.get_intermediate(interm, None, None);
    }
    let snap = sys.obs_snapshot();
    assert_eq!(
        snap.counter("qcache.evictions"),
        sys.query_cache().evictions()
    );
}

#[test]
fn forcing_cached_strategy_is_invalid() {
    let (_d, mut sys, id) = cached_system(1 << 20);
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    assert!(sys
        .fetch_with_strategy(&preds, None, None, FetchStrategy::Cached)
        .is_err());
}

#[test]
fn index_version_is_part_of_the_cache_key() {
    // Warm the cache while an index is live, then drop the index: the next
    // identical fetch must key differently (index_version 0 vs the build
    // counter) and miss, so a cached result can never masquerade as
    // index-served state — and vice versa after a rebuild.
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            query_cache_bytes: 16 << 20,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(ZillowData::generate(300, 1));
    let id = sys
        .register_trad(zillow_pipelines().remove(0), data)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    assert!(sys.index_enabled(), "index is on by default");

    let first = sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap();
    assert_ne!(first.strategy, FetchStrategy::Cached);
    assert_eq!(
        sys.get_intermediate(&preds, Some(&["pred"]), None)
            .unwrap()
            .strategy,
        FetchStrategy::Cached
    );

    sys.drop_index(&preds);
    let after_drop = sys.get_intermediate(&preds, Some(&["pred"]), None).unwrap();
    assert_ne!(
        after_drop.strategy,
        FetchStrategy::Cached,
        "dropping the index must move the cache key"
    );
    assert_eq!(first.frame, after_drop.frame, "answers never change");

    // The no-index key now repeats and hits again.
    assert_eq!(
        sys.get_intermediate(&preds, Some(&["pred"]), None)
            .unwrap()
            .strategy,
        FetchStrategy::Cached
    );
}

#[test]
fn adaptive_materialization_invalidates_cache() {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            storage: StorageStrategy::Adaptive { gamma_min: 1e-12 },
            query_cache_bytes: 16 << 20,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(ZillowData::generate(200, 1));
    let id = sys
        .register_trad(zillow_pipelines().remove(0), data)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    let preds = sys.intermediates_of(&id).last().unwrap().clone();

    // First fetch re-runs + materializes (invalidating the just-inserted
    // entry is fine: correctness over hit rate).
    let first = sys.get_intermediate(&preds, None, None).unwrap();
    assert_eq!(first.strategy, FetchStrategy::Rerun);
    let second = sys.get_intermediate(&preds, None, None).unwrap();
    // Whether served by cache or read, the data must be identical.
    assert_eq!(first.frame.n_rows(), second.frame.n_rows());
    for col in first.frame.columns() {
        let a = col.data.to_f64();
        let b = second.frame.column(&col.name).unwrap().data.to_f64();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9 || (x.is_nan() && y.is_nan()));
        }
    }
}
