//! Differential harness for the zone-map / max-activation index: every
//! Diagnostics query (topk, select_where_gt, get_rows, get_intermediate)
//! must return bit-identical results with the index on and off, over a
//! mixed TRAD + DNN workload, at every `read_parallelism` setting, and
//! after a reclaim pass demotes the indexed intermediates down the
//! quantization ladder. The index is a pure accelerator: it may change
//! plans, never answers.

use std::sync::Arc;

use mistique_core::{Mistique, MistiqueConfig, PlanChoice, StorageStrategy};
use mistique_nn::{simple_cnn, CifarLike};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

/// Build a mixed TRAD + DNN system over deterministic data. `top_m = 0`
/// disables the index; both variants otherwise share every knob, so the
/// stored bytes are identical and any divergence is the index's fault.
fn build(top_m: usize) -> (tempfile::TempDir, Mistique, Vec<String>) {
    let dir = tempfile::tempdir().unwrap();
    let config = MistiqueConfig {
        row_block_size: 32,
        storage: StorageStrategy::Dedup,
        min_read_bytes_per_worker: 0,
        index_top_m: top_m,
        ..MistiqueConfig::default()
    };
    let mut sys = Mistique::open(dir.path(), config).unwrap();
    let trad = Arc::new(ZillowData::generate(200, 1));
    let tid = sys
        .register_trad(zillow_pipelines().remove(0), trad)
        .unwrap();
    let cifar = Arc::new(CifarLike::generate(24, 10, 7));
    let did = sys
        .register_dnn(Arc::new(simple_cnn(24)), 3, 0, cifar, 8)
        .unwrap();
    sys.log_intermediates_parallel(&[&tid, &did]).unwrap();
    // Reads must always beat re-runs so the indexed fast path — which only
    // serves when the planner would have chosen Read — is open.
    sys.cost_model_mut().read_bandwidth = 1e18;
    let mut interms = sys.intermediates_of(&tid);
    interms.extend(sys.intermediates_of(&did));
    (dir, sys, interms)
}

/// Replay the full query mix against one system and render every result in
/// a bit-exact printable form (f64s as u64 bit patterns), so transcripts
/// can be compared across systems and worker counts with `assert_eq!`.
fn replay(sys: &mut Mistique, interms: &[String], workers: usize) -> Vec<String> {
    sys.set_read_parallelism(workers);
    sys.store_mut().clear_read_cache();
    let mut out = Vec::new();
    for interm in interms {
        let meta = sys.metadata().intermediate(interm).unwrap().clone();
        let col = meta.columns[0].clone();

        // Thresholds derived from the data itself are identical on both
        // systems because the logged values are identical.
        let full = sys
            .get_intermediate(interm, Some(&[col.as_str()]), None)
            .unwrap();
        let vals = full.frame.columns()[0].data.to_f64();
        let vmax = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let vmin = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let mid = vmin + (vmax - vmin) / 2.0;

        // k below, at, and above the max-activation list length, so both
        // the list-served path and the refusal-to-scan fallback replay.
        for k in [1usize, 7, 50] {
            let top = sys.topk(interm, &col, k).unwrap();
            let bits: Vec<(usize, u64)> = top.iter().map(|(r, v)| (*r, v.to_bits())).collect();
            out.push(format!("topk {interm} {col} {k}: {bits:?}"));
        }
        for (label, t) in [("below", vmin - 1.0), ("mid", mid), ("above", vmax)] {
            let rows = sys.select_where_gt(interm, &col, t).unwrap();
            out.push(format!("gt {interm} {col} {label}: {rows:?}"));
        }
        let picks = [0, meta.n_rows / 2, meta.n_rows - 1];
        let gathered = sys.get_rows(interm, &picks, None).unwrap();
        out.push(format!("rows {interm}: {:?}", frame_bits(&gathered.frame)));
        let whole = sys.get_intermediate(interm, None, None).unwrap();
        out.push(format!("full {interm}: {:?}", frame_bits(&whole.frame)));
    }
    out
}

fn frame_bits(frame: &mistique_dataframe::DataFrame) -> Vec<(String, Vec<u64>)> {
    frame
        .columns()
        .iter()
        .map(|c| {
            (
                c.name.clone(),
                c.data.to_f64().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

fn count_plans(sys: &Mistique, plan: PlanChoice) -> usize {
    sys.query_reports(usize::MAX)
        .iter()
        .filter(|r| r.plan == plan)
        .count()
}

#[test]
fn mixed_workload_is_bit_identical_at_every_worker_count() {
    let (_d_on, mut on, interms) = build(16);
    let (_d_off, mut off, interms_off) = build(0);
    assert_eq!(interms, interms_off, "identical registration order");

    let reference = replay(&mut off, &interms, 1);
    for workers in [1usize, 2, 4, 0] {
        let got_on = replay(&mut on, &interms, workers);
        let got_off = replay(&mut off, &interms, workers);
        assert_eq!(got_on, reference, "indexed diverged at workers={workers}");
        assert_eq!(got_off, reference, "scan diverged at workers={workers}");
    }

    // The harness is not vacuous: the indexed system actually served
    // indexed plans, and the scan system never did.
    assert!(
        count_plans(&on, PlanChoice::IndexedRead) > 0,
        "index never fired — the differential test compared scan to scan"
    );
    assert_eq!(count_plans(&off, PlanChoice::IndexedRead), 0);
}

#[test]
fn equivalence_survives_reclaim_demotion_down_the_ladder() {
    let (_d_on, mut on, interms) = build(16);
    let (_d_off, mut off, _) = build(0);

    // The same absolute budget drives both systems down the same ladder
    // steps: data accounting is index-free, and the indexed system sheds
    // its index bytes in a separate pre-phase.
    let budget = off.storage_budget_used() / 3;
    let rep_on = on.reclaim_to(budget).unwrap();
    let rep_off = off.reclaim_to(budget).unwrap();
    assert!(rep_on.within_budget() && rep_off.within_budget());
    assert!(
        rep_off.demotions.iter().any(|d| d.from != "INDEX"),
        "budget must force real ladder steps for the test to mean anything"
    );

    let reference = replay(&mut off, &interms, 1);
    for workers in [1usize, 2, 4, 0] {
        let got_on = replay(&mut on, &interms, workers);
        assert_eq!(
            got_on, reference,
            "indexed reads over demoted schemes diverged at workers={workers}"
        );
    }
}

#[test]
fn dropping_the_index_midstream_changes_no_answers() {
    let (_d, mut sys, interms) = build(16);
    let before = replay(&mut sys, &interms, 1);
    assert!(
        count_plans(&sys, PlanChoice::IndexedRead) > 0,
        "precondition: index was serving"
    );
    let drop_seq = sys.last_report().unwrap().seq;
    for interm in &interms {
        sys.drop_index(interm);
    }
    let after = replay(&mut sys, &interms, 1);
    assert_eq!(before, after, "index drop must be invisible to answers");
    let served_after_drop = sys
        .query_reports(usize::MAX)
        .iter()
        .filter(|r| r.seq > drop_seq && r.plan == PlanChoice::IndexedRead)
        .count();
    assert_eq!(
        served_after_drop, 0,
        "dropped index must stop serving plans"
    );
}

#[test]
fn reopened_store_serves_identical_answers_from_the_persisted_index() {
    let dir = tempfile::tempdir().unwrap();
    let config = MistiqueConfig {
        row_block_size: 32,
        storage: StorageStrategy::Dedup,
        index_top_m: 16,
        ..MistiqueConfig::default()
    };
    let (interms, reference) = {
        let mut sys = Mistique::open(dir.path(), config.clone()).unwrap();
        let data = Arc::new(ZillowData::generate(200, 1));
        let id = sys
            .register_trad(zillow_pipelines().remove(0), data)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        sys.cost_model_mut().read_bandwidth = 1e18;
        let interms = sys.intermediates_of(&id);
        if sys.persist().is_err() {
            // Environments without a JSON serializer cannot persist the
            // manifest; the index round-trip is covered by unit tests.
            return;
        }
        let reference = replay(&mut sys, &interms, 1);
        (interms, reference)
    };
    let mut sys = Mistique::reopen(dir.path(), config).unwrap();
    sys.cost_model_mut().read_bandwidth = 1e18;
    let got = replay(&mut sys, &interms, 1);
    assert_eq!(got, reference);
    assert!(
        count_plans(&sys, PlanChoice::IndexedRead) > 0,
        "the lazily loaded on-disk index must serve after reopen"
    );
}
