//! End-to-end acceptance of the flight recorder: a log → query → reclaim →
//! persist → reopen lifecycle leaves a durable timeline under
//! `<dir>/telemetry/` that replays the session — metric series with
//! positive deltas, journal events correlated to capture sequences, and
//! sequence numbers that continue across the restart. Plus: the retention
//! budget is a hard bound on the directory, disabling telemetry writes
//! nothing, and the live Prometheus exposition passes its own validator.

use std::path::Path;
use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig, StorageStrategy};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn telemetry_dir_bytes(dir: &Path) -> u64 {
    let tdir = dir.join("telemetry");
    let Ok(entries) = std::fs::read_dir(&tdir) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .filter(|m| m.is_file())
        .map(|m| m.len())
        .sum()
}

/// Log two pipelines, query them, and starve the storage budget so the
/// reclaim ladder runs.
fn run_session(sys: &mut Mistique, data: &Arc<ZillowData>) -> Vec<String> {
    let pipes = zillow_pipelines();
    let mut ids = Vec::new();
    for p in pipes.into_iter().take(2) {
        let id = sys.register_trad(p, Arc::clone(data)).unwrap();
        sys.log_intermediates(&id).unwrap();
        ids.push(id);
    }
    for interm in sys.intermediates_of(&ids[0]) {
        sys.fetch_with_strategy(&interm, None, Some(30), FetchStrategy::Read)
            .unwrap();
    }
    sys.reclaim_to(512).unwrap();
    ids
}

#[test]
fn lifecycle_replays_series_with_correlated_events() {
    let dir = tempfile::tempdir().unwrap();
    let data = Arc::new(ZillowData::generate(120, 3));
    let mut sys = Mistique::open(dir.path(), MistiqueConfig::default()).unwrap();
    run_session(&mut sys, &data);

    // Live view before the restart.
    let tl = sys.timeline().unwrap();
    assert!(!tl.points.is_empty(), "bursts must capture points");
    let seqs: Vec<u64> = tl.points.iter().map(|p| p.seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs must increase");

    // The logging burst leaves a counter series with positive deltas.
    let put_series = tl.series("store.put.count");
    assert!(!put_series.is_empty(), "store.put.count must have a series");
    assert!(put_series.iter().any(|(_, _, v)| *v > 0.0));
    // Reasons cover the boundaries this session crossed.
    let reasons: Vec<&str> = tl.points.iter().map(|p| p.reason.as_str()).collect();
    assert!(reasons.contains(&"log"));
    assert!(reasons.contains(&"reclaim"));

    // The starved reclaim journaled its ladder; every flushed event is
    // stamped with the sequence of the capture that carried it.
    assert!(tl.events.iter().any(|e| e.kind == "reclaim.demote"));
    assert!(tl.events.iter().any(|e| e.kind == "reclaim.purge"));
    let point_seqs: std::collections::BTreeSet<u64> = seqs.iter().copied().collect();
    for e in &tl.events {
        assert!(
            point_seqs.contains(&e.snap_seq),
            "event {} (seq {}) has no matching capture point",
            e.kind,
            e.snap_seq
        );
    }
    // Demotion events name their intermediate, so per-intermediate replay
    // works.
    let demoted = tl
        .events
        .iter()
        .find(|e| e.kind == "reclaim.demote")
        .unwrap()
        .intermediate
        .clone()
        .expect("demotion events carry an intermediate");
    assert!(!tl.events_for(&demoted).is_empty());

    let pre_restart_max = *seqs.last().unwrap();
    match sys.persist() {
        Ok(()) => {}
        Err(e) => {
            eprintln!("note: skipping restart leg: {e}");
            return;
        }
    }
    drop(sys);

    // `load_timeline` needs no manifest and sees the same durable state.
    let tl = Mistique::load_timeline(dir.path()).unwrap();
    assert_eq!(tl.points.iter().map(|p| p.seq).max(), Some(pre_restart_max));

    // Reopen: recovery is journaled, and sequences continue — no reuse.
    let sys = Mistique::reopen(dir.path(), MistiqueConfig::default()).unwrap();
    let tl = sys.timeline().unwrap();
    let rec = tl
        .events
        .iter()
        .filter(|e| e.kind == "recovery")
        .max_by_key(|e| e.snap_seq)
        .expect("reopen must journal recovery");
    assert!(
        rec.snap_seq > pre_restart_max,
        "recovery (seq {}) must be stamped past the previous run (max {})",
        rec.snap_seq,
        pre_restart_max
    );
    assert!(rec.details.contains_key("quarantined"));
    // The recovery capture is a counter-reset boundary: the new run's
    // points exist alongside the old ones in one replayable stream.
    assert!(tl.points.iter().any(|p| p.seq > pre_restart_max));
    assert!(tl.points.iter().any(|p| p.seq <= pre_restart_max));

    // Windowing isolates the restarted run.
    let recent = tl.window(pre_restart_max + 1, u64::MAX);
    assert!(recent.points.iter().all(|p| p.seq > pre_restart_max));
    assert!(recent.events.iter().any(|e| e.kind == "recovery"));
}

#[test]
fn retention_budget_is_a_hard_bound_on_the_directory() {
    let dir = tempfile::tempdir().unwrap();
    let budget = 8192u64;
    let data = Arc::new(ZillowData::generate(120, 3));
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            telemetry_budget_bytes: budget,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let pipes = zillow_pipelines();
    let id = sys
        .register_trad(pipes[0].clone(), Arc::clone(&data))
        .unwrap();
    // Every iteration is several captures; the ring must rotate many times
    // over without the directory ever exceeding the budget.
    for _ in 0..20 {
        sys.log_intermediates(&id).unwrap();
        sys.reclaim_to(u64::MAX).unwrap();
        let used = telemetry_dir_bytes(dir.path());
        assert!(
            used <= budget,
            "telemetry dir holds {used} bytes, budget is {budget}"
        );
    }
    let stats = sys.telemetry_stats().expect("telemetry is enabled");
    assert!(
        stats.segments_dropped > 0,
        "an 8 KiB budget must rotate the ring ({} captures, {} bytes)",
        stats.captures,
        stats.total_bytes
    );
    assert!(stats.total_bytes <= budget);
    // Oldest-first eviction: the survivors are the newest captures.
    let tl = sys.timeline().unwrap();
    assert!(!tl.points.is_empty(), "rotation must never empty the ring");
    assert_eq!(
        tl.points.iter().map(|p| p.seq).max(),
        Some(stats.next_seq - 1),
        "the newest capture always survives rotation"
    );
}

#[test]
fn zero_budget_disables_telemetry_entirely() {
    let dir = tempfile::tempdir().unwrap();
    let data = Arc::new(ZillowData::generate(60, 3));
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            telemetry_budget_bytes: 0,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let id = sys
        .register_trad(zillow_pipelines().remove(0), Arc::clone(&data))
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    assert!(sys.telemetry_stats().is_none());
    assert!(!dir.path().join("telemetry").exists());
    let tl = sys.timeline().unwrap();
    assert!(tl.points.is_empty() && tl.events.is_empty());
}

#[test]
fn live_prometheus_exposition_passes_the_validator() {
    let dir = tempfile::tempdir().unwrap();
    let data = Arc::new(ZillowData::generate(120, 3));
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            storage: StorageStrategy::Dedup,
            query_cache_bytes: 1 << 20,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    run_session(&mut sys, &data);

    let exposition = sys.render_prometheus();
    mistique_core::validate_prometheus(&exposition)
        .unwrap_or_else(|e| panic!("exposition failed validation: {e}\n{exposition}"));
    // Histograms render the full Prometheus shape.
    assert!(exposition.contains("# TYPE"));
    assert!(exposition.contains("_bucket{le=\"+Inf\"}"));
    assert!(exposition.contains("_sum"));
    assert!(exposition.contains("_count"));
}
