//! Crash-safety of the flight recorder: enumerate a simulated power cut at
//! **every** backend syscall of a log → query → reclaim → persist workload
//! (telemetry enabled, so timeline segment writes are interleaved with data
//! writes on the same [`FaultyFs`]) under all three [`TornWrite`] policies,
//! and assert:
//!
//! - a torn telemetry write never quarantines a *data* partition or breaks
//!   reopen — telemetry failures are swallowed, data invariants are
//!   `tests/crash_safety.rs`'s unchanged contract;
//! - the timeline always loads from whatever segments survive: a valid
//!   pre- or post-capture prefix, strictly increasing sequence numbers,
//!   never a parse error;
//! - events only ever reference captures that exist (`snap_seq` ≤ the
//!   newest point, or the yet-unflushed next sequence);
//! - after reopen, the recorder resumes: sequence numbers continue past the
//!   survivors and the recovery pass is journaled.
//!
//! A separate case corrupts a sealed telemetry segment with garbage and
//! asserts recovery still quarantines zero data partitions.

use std::sync::Arc;

use mistique_core::{
    FetchStrategy, Mistique, MistiqueConfig, MistiqueError, TelemetryDir, Timeline,
};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;
use mistique_store::{FaultyFs, StorageBackend, TornWrite};

const POLICIES: [TornWrite; 3] = [TornWrite::DropAll, TornWrite::TornHalf, TornWrite::KeepAll];

/// Reasons the engine stamps on captures; a loaded point must carry one.
const REASONS: [&str; 7] = [
    "log",
    "reclaim",
    "recovery",
    "interval",
    "plan.flip",
    "drift",
    "qcache.storm",
];

fn sys_config() -> MistiqueConfig {
    MistiqueConfig {
        row_block_size: 50,
        // Forced-Read queries + an astronomic tolerance keep the workload's
        // backend op sequence deterministic: no timing-dependent drift
        // flags, no plan flips, no query-cache churn.
        drift_tolerance: 1e12,
        ..MistiqueConfig::default()
    }
}

/// The workload under test. Ends with `persist()`, so a swallowed telemetry
/// failure is always followed by a failing data op once the disk is gone.
fn run_workload(sys: &mut Mistique, data: &Arc<ZillowData>) -> Result<(), MistiqueError> {
    let pipes = zillow_pipelines();
    let id_a = sys.register_trad(pipes[0].clone(), Arc::clone(data))?;
    sys.log_intermediates(&id_a)?;
    let id_b = sys.register_trad(pipes[1].clone(), Arc::clone(data))?;
    sys.log_intermediates(&id_b)?;
    for interm in sys.intermediates_of(&id_a) {
        sys.fetch_with_strategy(&interm, None, Some(20), FetchStrategy::Read)?;
    }
    // A budget far below usage drives demotions, purges, and a compaction —
    // the event-heavy path.
    sys.reclaim_to(256)?;
    sys.persist()?;
    Ok(())
}

fn load_points(fs: &FaultyFs) -> Timeline {
    let backend: Arc<dyn StorageBackend> = Arc::new(fs.clone());
    let io = TelemetryDir::open_readonly(backend, "/vfs".as_ref());
    Timeline::load(&io).expect("timeline load must tolerate any torn state")
}

/// Shared invariants of any surviving timeline.
fn assert_timeline_sane(tl: &Timeline, ctx: &str) {
    for w in tl.points.windows(2) {
        assert!(
            w[0].seq < w[1].seq,
            "{ctx}: point seqs must strictly increase ({} then {})",
            w[0].seq,
            w[1].seq
        );
    }
    for p in &tl.points {
        assert!(
            REASONS.contains(&p.reason.as_str()),
            "{ctx}: unknown capture reason {:?}",
            p.reason
        );
    }
    let max_seq = tl.points.iter().map(|p| p.seq).max();
    for e in &tl.events {
        // An event is stamped with the capture that flushed it; the lone
        // exception is a pending event surfaced by `Mistique::timeline()`
        // before its capture, stamped with the *next* sequence.
        assert!(
            e.snap_seq <= max_seq.unwrap_or(0) + 1,
            "{ctx}: event {} stamped with seq {} but newest point is {:?}",
            e.kind,
            e.snap_seq,
            max_seq
        );
    }
}

#[test]
fn every_crash_point_keeps_timeline_loadable_and_data_clean() {
    let data = Arc::new(ZillowData::generate(80, 1));

    // Golden run: telemetry-on workload over a pristine virtual disk.
    let fs = FaultyFs::new();
    let mut sys = Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
    let open_ops = fs.op_count();
    match run_workload(&mut sys, &data) {
        Ok(()) => {}
        Err(MistiqueError::Invalid(msg)) if msg.contains("manifest serialize") => {
            eprintln!("note: skipping telemetry crash enumeration: {msg}");
            return;
        }
        Err(e) => panic!("golden workload failed: {e}"),
    }
    let total = fs.op_count();
    drop(sys);
    let golden = load_points(&fs);
    assert!(
        !golden.points.is_empty(),
        "golden run must capture telemetry points"
    );
    assert!(
        golden.events.iter().any(|e| e.kind == "reclaim.demote")
            && golden.events.iter().any(|e| e.kind == "reclaim.purge"),
        "the starved reclaim must journal ladder events"
    );
    assert_timeline_sane(&golden, "golden");
    let golden_max = golden.points.iter().map(|p| p.seq).max().unwrap();

    for k in (open_ops + 1)..=total {
        for policy in POLICIES {
            let fs = FaultyFs::new();
            let mut sys =
                Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
            fs.crash_after(k);
            let r = run_workload(&mut sys, &data);
            assert!(
                r.is_err(),
                "crash at op {k} must surface through a data op (telemetry \
                 failures are swallowed, but persist comes after every hook)"
            );
            drop(sys);
            fs.power_cut(policy);

            // Whatever survived on disk parses: a consistent pre-or-post
            // prefix of the capture stream.
            let tl = load_points(&fs);
            assert_timeline_sane(&tl, &format!("crash at {k} ({policy:?})"));

            // Reopen: torn telemetry must never contaminate the data path.
            match Mistique::reopen_with_backend("/vfs", sys_config(), Arc::new(fs.clone())) {
                Err(MistiqueError::NoManifest) => {}
                Err(e) => panic!("crash at {k} ({policy:?}): reopen failed: {e}"),
                Ok(sys) => {
                    let report = sys.recovery_report().unwrap();
                    assert_eq!(
                        report.quarantined, 0,
                        "crash at {k} ({policy:?}): torn telemetry write \
                         quarantined a data partition"
                    );
                    // The reopened recorder journals its recovery pass with
                    // a sequence past everything that survived the cut.
                    let tl = sys.timeline().unwrap();
                    assert_timeline_sane(&tl, &format!("post-reopen at {k} ({policy:?})"));
                    let rec = tl
                        .events
                        .iter()
                        .filter(|e| e.kind == "recovery")
                        .max_by_key(|e| e.snap_seq)
                        .expect("reopen must journal a recovery event");
                    assert!(
                        rec.snap_seq > 0,
                        "crash at {k} ({policy:?}): recovery event unstamped"
                    );
                }
            }
        }
    }

    // Completed workload + power cut: everything the recorder reported as
    // written is durable, so the full golden timeline survives any policy.
    for policy in POLICIES {
        let fs = FaultyFs::new();
        let mut sys =
            Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
        run_workload(&mut sys, &data).unwrap();
        drop(sys);
        fs.power_cut(policy);
        let tl = load_points(&fs);
        assert_eq!(
            tl.points.iter().map(|p| p.seq).max(),
            Some(golden_max),
            "{policy:?}: completed run must keep every capture"
        );
    }
}

#[test]
fn garbage_in_telemetry_segment_never_touches_data_recovery() {
    let data = Arc::new(ZillowData::generate(80, 1));
    let fs = FaultyFs::new();
    let mut sys = Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
    match run_workload(&mut sys, &data) {
        Ok(()) => {}
        Err(MistiqueError::Invalid(msg)) if msg.contains("manifest serialize") => {
            eprintln!("note: skipping telemetry corruption test: {msg}");
            return;
        }
        Err(e) => panic!("golden workload failed: {e}"),
    }
    drop(sys);

    // Overwrite the middle of every telemetry segment with binary garbage.
    let seg_files: Vec<_> = fs
        .visible_files()
        .into_iter()
        .filter(|p| p.to_string_lossy().contains("/telemetry/"))
        .collect();
    assert!(!seg_files.is_empty(), "workload must write telemetry");
    for f in &seg_files {
        fs.corrupt_durable(f, |bytes| {
            let mid = bytes.len() / 2;
            for b in bytes[mid..].iter_mut() {
                *b = 0xfe;
            }
        });
    }

    // The timeline degrades to the parseable prefix of each segment...
    let tl = load_points(&fs);
    assert_timeline_sane(&tl, "corrupted segments");

    // ...and the data side is pristine: recovery quarantines nothing, every
    // intermediate reads back.
    let mut sys =
        Mistique::reopen_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
    let report = sys.recovery_report().unwrap();
    assert_eq!(report.quarantined, 0, "telemetry bitrot is not data bitrot");
    assert_eq!(report.missing, 0);
    for model in sys.model_ids() {
        for interm in sys.intermediates_of(&model) {
            let materialized = sys
                .metadata()
                .intermediate(&interm)
                .map(|m| m.materialized)
                .unwrap_or(false);
            if materialized {
                sys.fetch_with_strategy(&interm, None, Some(10), FetchStrategy::Read)
                    .unwrap();
            }
        }
    }
}
