//! Crash-safety of the workload audit journal and determinism of replay.
//!
//! Part 1 enumerates a simulated power cut at **every** backend syscall of a
//! register → log → query → reclaim → persist workload (audit capture on,
//! so journal segment writes interleave with data and telemetry writes on
//! the same [`FaultyFs`]) under all three [`TornWrite`] policies, asserting:
//!
//! - the journal always loads from whatever segments survive — a valid
//!   prefix with strictly increasing sequence numbers, never a parse error;
//! - a torn audit write never quarantines a *data* partition or breaks
//!   reopen: journal I/O is best-effort by contract;
//! - after reopen the journal resumes with sequence numbers strictly past
//!   every surviving record;
//! - a *completed* workload's flushed records survive any power-cut policy.
//!
//! Part 2 is the replay-determinism contract behind
//! `mistique replay --differential`: a captured mixed TRAD/DNN workload
//! replayed into fresh stores at `read_parallelism` 1, 2, 4 and 0 (= all
//! CPUs) must produce bit-identical answer transcripts and identical plan
//! choices on every leg.

use std::sync::Arc;

use mistique_core::{differential_replay, FetchStrategy, Mistique, MistiqueConfig, MistiqueError};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;
use mistique_store::{FaultyFs, StorageBackend, TornWrite};

const POLICIES: [TornWrite; 3] = [TornWrite::DropAll, TornWrite::TornHalf, TornWrite::KeepAll];

fn sys_config() -> MistiqueConfig {
    MistiqueConfig {
        row_block_size: 50,
        // An astronomic tolerance keeps the workload's backend op sequence
        // deterministic: no timing-dependent drift flags or plan churn.
        drift_tolerance: 1e12,
        ..MistiqueConfig::default()
    }
}

/// The audited workload: every entry-point kind appears at least once, and
/// the explicit `audit_flush` calls put journal segment writes in the middle
/// of the op stream, not just at drop time.
fn run_workload(sys: &mut Mistique, data: &Arc<ZillowData>) -> Result<(), MistiqueError> {
    let pipes = zillow_pipelines();
    let id_a = sys.register_trad(pipes[0].clone(), Arc::clone(data))?;
    sys.log_intermediates(&id_a)?;
    sys.audit_flush();
    let interms = sys.intermediates_of(&id_a);
    let interm = interms[0].clone();
    sys.topk(&interm, "sqft", 5)?;
    sys.pointq(&interm, "sqft", 3)?;
    sys.fetch_with_strategy(&interm, None, Some(20), FetchStrategy::Read)?;
    sys.audit_flush();
    // A budget far below usage drives demotions and purges.
    sys.reclaim_to(256)?;
    sys.persist()?;
    Ok(())
}

fn load_journal(fs: &FaultyFs) -> Vec<mistique_core::AuditRecord> {
    let backend: Arc<dyn StorageBackend> = Arc::new(fs.clone());
    Mistique::load_audit_with_backend(backend, "/vfs".as_ref())
        .expect("audit journal load must tolerate any torn state")
}

/// Shared invariants of any surviving journal.
fn assert_journal_sane(records: &[mistique_core::AuditRecord], ctx: &str) {
    for w in records.windows(2) {
        assert!(
            w[0].seq < w[1].seq,
            "{ctx}: record seqs must strictly increase ({} then {})",
            w[0].seq,
            w[1].seq
        );
    }
    for r in records {
        assert!(!r.op.is_empty(), "{ctx}: record {} has an empty op", r.seq);
        assert!(
            r.op == "register"
                || r.op == "log"
                || r.op == "log_parallel"
                || r.op == "reclaim"
                || r.op.starts_with("fetch.")
                || r.op.starts_with("diag."),
            "{ctx}: record {} has unknown op {:?}",
            r.seq,
            r.op
        );
    }
}

#[test]
fn every_crash_point_keeps_journal_loadable_and_data_clean() {
    let data = Arc::new(ZillowData::generate(80, 1));

    // Golden run over a pristine virtual disk.
    let fs = FaultyFs::new();
    let mut sys = Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
    let open_ops = fs.op_count();
    match run_workload(&mut sys, &data) {
        Ok(()) => {}
        Err(MistiqueError::Invalid(msg)) if msg.contains("manifest serialize") => {
            eprintln!("note: skipping audit crash enumeration: {msg}");
            return;
        }
        Err(e) => panic!("golden workload failed: {e}"),
    }
    let total = fs.op_count();
    drop(sys);
    let golden = load_journal(&fs);
    assert!(
        golden.len() >= 6,
        "golden run must journal every entry point, got {}",
        golden.len()
    );
    assert_journal_sane(&golden, "golden");
    let golden_max = golden.last().unwrap().seq;

    for k in (open_ops + 1)..=total {
        for policy in POLICIES {
            let fs = FaultyFs::new();
            let mut sys =
                Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
            fs.crash_after(k);
            let r = run_workload(&mut sys, &data);
            assert!(
                r.is_err(),
                "crash at op {k} must surface through a data op (audit \
                 failures are swallowed, but persist comes after every hook)"
            );
            drop(sys);
            fs.power_cut(policy);

            // Whatever survived on disk parses as a sane journal prefix.
            let survivors = load_journal(&fs);
            assert_journal_sane(&survivors, &format!("crash at {k} ({policy:?})"));
            let survivor_max = survivors.last().map(|r| r.seq);

            // Reopen: a torn journal write must never contaminate data.
            match Mistique::reopen_with_backend("/vfs", sys_config(), Arc::new(fs.clone())) {
                Err(MistiqueError::NoManifest) => {}
                Err(e) => panic!("crash at {k} ({policy:?}): reopen failed: {e}"),
                Ok(mut sys) => {
                    let report = sys.recovery_report().unwrap();
                    assert_eq!(
                        report.quarantined, 0,
                        "crash at {k} ({policy:?}): torn audit write \
                         quarantined a data partition"
                    );
                    // The journal resumes past every surviving record: one
                    // more audited op, flushed, must extend the sequence.
                    let _ = sys.reclaim();
                    sys.audit_flush();
                    drop(sys);
                    let resumed = load_journal(&fs);
                    assert_journal_sane(&resumed, &format!("post-reopen at {k} ({policy:?})"));
                    let resumed_max = resumed.last().map(|r| r.seq);
                    assert!(
                        resumed_max > survivor_max,
                        "crash at {k} ({policy:?}): journal did not resume \
                         ({survivor_max:?} then {resumed_max:?})"
                    );
                }
            }
        }
    }

    // Completed workload + power cut: every flushed record is durable (the
    // journal flush is an atomic segment rewrite), so the golden journal
    // survives any policy.
    for policy in POLICIES {
        let fs = FaultyFs::new();
        let mut sys =
            Mistique::open_with_backend("/vfs", sys_config(), Arc::new(fs.clone())).unwrap();
        run_workload(&mut sys, &data).unwrap();
        drop(sys);
        fs.power_cut(policy);
        let survivors = load_journal(&fs);
        assert_eq!(
            survivors.last().map(|r| r.seq),
            Some(golden_max),
            "{policy:?}: completed run must keep every journal record"
        );
    }
}

#[test]
fn replay_is_deterministic_across_read_parallelism() {
    // Capture a mixed TRAD/DNN workload with every query family the replay
    // engine dispatches on.
    let capture = tempfile::tempdir().unwrap();
    let config = sys_config();
    {
        let mut sys = Mistique::open(capture.path(), config.clone()).unwrap();
        let data = Arc::new(ZillowData::generate(200, 5));
        let id = sys
            .register_trad(zillow_pipelines().remove(0), data)
            .unwrap();
        sys.log_intermediates(&id).unwrap();

        let cifar = Arc::new(mistique_nn::CifarLike::generate(16, 4, 7));
        let labels = cifar.labels.clone();
        let dnn = sys
            .register_dnn(Arc::new(mistique_nn::simple_cnn(16)), 9, 1, cifar, 8)
            .unwrap();
        sys.log_intermediates(&dnn).unwrap();

        let interm = sys.intermediates_of(&id)[0].clone();
        sys.topk(&interm, "sqft", 7).unwrap();
        sys.pointq(&interm, "sqft", 3).unwrap();
        sys.col_dist(&interm, "sqft", 6).unwrap();
        sys.get_rows(&interm, &[0, 3, 5], None).unwrap();
        sys.get_intermediate(&interm, None, Some(40)).unwrap();

        let dnn_interms = sys.intermediates_of(&dnn);
        let softmax = dnn_interms.last().unwrap().clone();
        sys.argmax_predictions(&softmax).unwrap();
        sys.accuracy(&softmax, &labels).unwrap();
        sys.knn(&dnn_interms[0], 0, 3).unwrap();
        sys.audit_flush();
    }
    let records = Mistique::load_audit(capture.path()).unwrap();
    assert!(
        records.len() >= 12,
        "capture produced {} records",
        records.len()
    );

    // Replay at every worker count: answers and plans must be identical.
    let scratch = tempfile::tempdir().unwrap();
    let report = differential_replay(&records, scratch.path(), &config, &[1, 2, 4, 0]).unwrap();
    assert!(
        report.consistent(),
        "differential replay diverged:\n{}",
        report.mismatches.join("\n")
    );
    assert_eq!(report.runs.len(), 4);
    for run in &report.runs {
        assert_eq!(
            run.outcome.executed,
            records.len() as u64,
            "workers={}: every captured record must replay",
            run.workers
        );
        assert_eq!(run.outcome.failed, 0, "workers={}", run.workers);
        assert!(run.outcome.skipped.is_empty(), "workers={}", run.workers);
        assert_eq!(
            run.outcome.transcript_digest(),
            report.runs[0].outcome.transcript_digest(),
            "workers={} transcript differs from workers={}",
            run.workers,
            report.runs[0].workers
        );
    }
    // The legs replayed the same machine the capture ran on, so the plan
    // choices should also agree with the original journal.
    let (matched, compared) = report.plan_agreement;
    assert!(compared > 0, "capture must journal plan choices");
    assert_eq!(
        matched, compared,
        "replay plan choices diverged from capture"
    );
}
