//! Query EXPLAIN integration tests: every diagnostic query yields a
//! `QueryReport` with real cost predictions, the span tree of a cold read is
//! identical at every `read_parallelism` setting, the Perfetto export is
//! valid Chrome-trace JSON, a miscalibrated cost model trips the drift flag,
//! and the span-ring / report-retention knobs in `MistiqueConfig` are
//! honoured.

use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig, PlanChoice, StorageStrategy};
use mistique_obs::tree::trace_trees;
use mistique_obs::SpanNode;
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

/// A small logged TRAD system with several row blocks per column, so cold
/// reads touch multiple partitions and decode spans.
fn explain_system(config: MistiqueConfig) -> (tempfile::TempDir, Mistique, String) {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(dir.path(), config).unwrap();
    let data = Arc::new(ZillowData::generate(150, 1));
    let id = sys
        .register_trad(zillow_pipelines().remove(0), data)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    (dir, sys, id)
}

fn small_blocks() -> MistiqueConfig {
    MistiqueConfig {
        row_block_size: 40,
        storage: StorageStrategy::Dedup,
        // These tests pin down the *scan* plans; indexed plans have their own
        // suite below and in tests/index_equivalence.rs.
        index_top_m: 0,
        ..MistiqueConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Reports: every Diagnostics query leaves an attributed QueryReport.
// ---------------------------------------------------------------------------

#[test]
fn every_diagnostic_query_yields_a_labeled_report() {
    let (_d, mut sys, id) = explain_system(small_blocks());
    let interms = sys.intermediates_of(&id);
    let preds = interms.last().unwrap().clone();
    let first = interms[0].clone();

    sys.topk(&preds, "pred", 5).unwrap();
    let r = sys.last_report().expect("topk leaves a report").clone();
    assert_eq!(r.query, "diag.topk");
    assert_eq!(r.intermediate, preds);
    assert!(
        r.plan == PlanChoice::Read || r.plan == PlanChoice::Rerun,
        "first fetch is never served by the query cache"
    );
    assert!(r.predicted_read_s > 0.0, "Eq 4 prediction recorded");
    assert!(r.predicted_rerun_s > 0.0, "Eq 2/3 prediction recorded");
    assert!(r.actual > std::time::Duration::ZERO);
    assert!(r.n_ex > 0);
    assert!(!r.scheme.is_empty());
    // A read that went through the store moved bytes and touched partitions.
    if r.plan == PlanChoice::Read {
        assert!(r.attribution.gets > 0);
        assert!(r.attribution.bytes > 0);
    }

    let col0 = sys.metadata().intermediate(&first).unwrap().columns[0].clone();
    sys.col_dist(&first, &col0, 8).unwrap();
    assert_eq!(sys.last_report().unwrap().query, "diag.col_dist");

    sys.pointq(&preds, "pred", 3).unwrap();
    assert_eq!(sys.last_report().unwrap().query, "diag.pointq");

    // The rendered report mentions the plan, both predictions, and the trace.
    let text = sys.last_report().unwrap().render();
    for needle in ["plan", "predicted read", "rerun", "actual", "trace"] {
        assert!(text.contains(needle), "render missing {needle:?}:\n{text}");
    }
}

#[test]
fn cached_fetches_report_the_cached_plan() {
    let (_d, mut sys, id) = explain_system(MistiqueConfig {
        query_cache_bytes: 16 << 20,
        ..small_blocks()
    });
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    sys.topk(&preds, "pred", 5).unwrap();
    sys.topk(&preds, "pred", 5).unwrap();
    let r = sys.last_report().unwrap();
    assert_eq!(r.plan, PlanChoice::Cached);
    assert!(r.cache_hit);
    assert_eq!(r.query, "diag.topk");
    // Even cached hits carry the cost-model predictions for the audit trail.
    assert!(r.predicted_read_s > 0.0);
    assert!(r.predicted_rerun_s > 0.0);
}

#[test]
fn report_sequence_numbers_are_monotonic() {
    let (_d, mut sys, id) = explain_system(small_blocks());
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    for _ in 0..3 {
        sys.fetch_with_strategy(&preds, None, Some(32), FetchStrategy::Read)
            .unwrap();
    }
    let reports = sys.query_reports(10);
    assert_eq!(reports.len(), 3);
    for w in reports.windows(2) {
        assert_eq!(w[1].seq, w[0].seq + 1);
    }
    assert!(reports.iter().all(|r| r.plan == PlanChoice::Read));
}

// ---------------------------------------------------------------------------
// Indexed plans: top-k and threshold queries explain their block pruning.
// ---------------------------------------------------------------------------

/// Same shape as [`small_blocks`] but with the index left at its default
/// (enabled) setting, plus a cost model that always prefers reads so the
/// planner-mirror gate inside the indexed paths is deterministically open.
fn indexed_system() -> (tempfile::TempDir, Mistique, String) {
    let (d, mut sys, id) = explain_system(MistiqueConfig {
        row_block_size: 40,
        storage: StorageStrategy::Dedup,
        ..MistiqueConfig::default()
    });
    sys.cost_model_mut().read_bandwidth = 1e18;
    (d, sys, id)
}

#[test]
fn indexed_topk_reports_the_indexed_plan() {
    let (_d, mut sys, id) = indexed_system();
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    let top = sys.topk(&preds, "pred", 5).unwrap();
    assert_eq!(top.len(), 5);
    let r = sys.last_report().unwrap().clone();
    assert_eq!(r.query, "diag.topk");
    assert_eq!(r.plan, PlanChoice::IndexedRead);
    let p = r.pruning.expect("indexed plans carry pruning stats");
    assert!(p.blocks_total > 0);
    assert_eq!(
        p.blocks_skipped, p.blocks_total,
        "a list-served top-k never touches the data partitions"
    );
    assert!(p.predicted_s > 0.0);
    assert!(
        r.render().contains("index    : skipped"),
        "render must surface the pruning:\n{}",
        r.render()
    );
    // Repeat top-k stays on the index: it bypasses the query cache entirely.
    sys.topk(&preds, "pred", 5).unwrap();
    assert_eq!(sys.last_report().unwrap().plan, PlanChoice::IndexedRead);
}

#[test]
fn indexed_threshold_scan_skips_pruned_blocks() {
    let (_d, mut sys, id) = indexed_system();
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    // A threshold above the global max matches nothing; the zone maps prove
    // every block irrelevant and the scan reads zero partitions.
    let max = sys.topk(&preds, "pred", 1).unwrap()[0].1;
    let rows = sys.select_where_gt(&preds, "pred", max).unwrap();
    assert!(rows.is_empty());
    let r = sys.last_report().unwrap().clone();
    assert_eq!(r.query, "diag.select_where_gt");
    assert_eq!(r.plan, PlanChoice::IndexedRead);
    let p = r.pruning.expect("indexed plans carry pruning stats");
    assert!(p.blocks_total > 0);
    assert_eq!(p.blocks_skipped, p.blocks_total);

    // Just below the max at least the argmax row matches, and the answer
    // still arrives through the indexed plan.
    let lo = max - max.abs().max(1.0) * 1e-9;
    let rows = sys.select_where_gt(&preds, "pred", lo).unwrap();
    assert!(!rows.is_empty());
    let r = sys.last_report().unwrap().clone();
    assert_eq!(r.plan, PlanChoice::IndexedRead);
    assert!(r.pruning.unwrap().blocks_skipped < p.blocks_total);
}

#[test]
fn disabling_the_index_restores_scan_plans() {
    let (_d, mut sys, id) = explain_system(small_blocks());
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    sys.cost_model_mut().read_bandwidth = 1e18;
    sys.topk(&preds, "pred", 5).unwrap();
    let r = sys.last_report().unwrap();
    assert_ne!(r.plan, PlanChoice::IndexedRead);
    assert!(r.pruning.is_none(), "scan plans carry no pruning stats");
}

// ---------------------------------------------------------------------------
// Span trees: worker-count invariance of the cold-read trace.
// ---------------------------------------------------------------------------

/// Flattened multiset of name-paths of a span forest, sorted.
fn shape(nodes: &[SpanNode]) -> Vec<String> {
    fn walk(nodes: &[SpanNode], prefix: &str, out: &mut Vec<String>) {
        for n in nodes {
            let path = format!("{prefix}/{}", n.record.name);
            out.push(path.clone());
            walk(&n.children, &path, out);
        }
    }
    let mut out = Vec::new();
    walk(nodes, "", &mut out);
    out.sort();
    out
}

#[test]
fn cold_read_trace_tree_is_identical_at_any_worker_count() {
    let (_d, mut sys, id) = explain_system(small_blocks());
    let interm = sys.intermediates_of(&id)[1].clone();
    sys.flush().unwrap();

    let mut shapes: Vec<(usize, Vec<String>)> = Vec::new();
    for workers in [1usize, 2, 4, 0] {
        sys.set_read_parallelism(workers);
        sys.store_mut().clear_read_cache();
        sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
            .unwrap();
        let report = sys.last_report().unwrap().clone();
        let spans = sys.obs().recent_spans();
        let roots = trace_trees(&spans, report.trace_id);
        assert_eq!(roots.len(), 1, "one root span per fetch");
        assert_eq!(roots[0].record.name, "fetch.read");
        shapes.push((workers, shape(&roots)));
    }

    let (_, reference) = &shapes[0];
    assert!(
        reference.iter().any(|p| p == "/fetch.read"),
        "missing root: {reference:?}"
    );
    assert!(
        reference
            .iter()
            .any(|p| p == "/fetch.read/store.partition.load"),
        "cold read must show partition loads as children: {reference:?}"
    );
    assert!(
        reference.iter().any(|p| p == "/fetch.read/fetch.decode"),
        "per-column decode spans must parent under the fetch: {reference:?}"
    );
    for (workers, s) in &shapes[1..] {
        assert_eq!(
            s, reference,
            "trace tree at read_parallelism={workers} diverged from serial"
        );
    }
}

#[test]
fn rendered_trace_shows_the_hierarchy() {
    let (_d, mut sys, id) = explain_system(small_blocks());
    let interm = sys.intermediates_of(&id)[1].clone();
    sys.flush().unwrap();
    sys.store_mut().clear_read_cache();
    sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
        .unwrap();
    let trace_id = sys.last_report().unwrap().trace_id;
    let text = sys.render_trace(trace_id);
    assert!(text.contains("fetch.read"), "{text}");
    assert!(text.contains("store.partition.load"), "{text}");
    assert!(text.contains("fetch.decode"), "{text}");
    // Children are drawn with tree glyphs under the root.
    assert!(
        text.contains("├──") || text.contains("└──"),
        "no tree structure in:\n{text}"
    );
}

// ---------------------------------------------------------------------------
// Exporters: Perfetto JSON round-trip + folded stacks.
// ---------------------------------------------------------------------------

#[test]
fn perfetto_export_is_valid_chrome_trace_json_and_round_trips() {
    let (_d, mut sys, id) = explain_system(small_blocks());
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    sys.topk(&preds, "pred", 5).unwrap();

    // Golden-file style: write, read back, parse with a real JSON parser.
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("trace.json");
    std::fs::write(&path, sys.perfetto_json()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");

    assert_eq!(v["displayTimeUnit"].as_str(), Some("ms"));
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    let n_spans = sys.obs().recent_spans().len();
    assert_eq!(events.len(), n_spans, "one complete event per ring span");
    assert!(n_spans > 0);
    for ev in events {
        assert_eq!(ev["ph"].as_str(), Some("X"), "complete events only");
        assert_eq!(ev["cat"].as_str(), Some("mistique"));
        assert!(ev["name"].as_str().is_some_and(|s| !s.is_empty()));
        assert!(ev["ts"].as_f64().is_some() && ev["dur"].as_f64().is_some());
        assert!(ev["args"]["span_id"].as_f64().is_some());
    }
    // The fetch root span makes it into the export alongside its children.
    assert!(events.iter().any(|ev| {
        let name = ev["name"].as_str();
        name == Some("fetch.read") || name == Some("fetch.cached")
    }));

    // Folded stacks: every line is "path spans;sep;by;semicolons <count>".
    let folded = sys.flamegraph_folded();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, n) = line.rsplit_once(' ').expect("stack <ns> per line");
        assert!(!stack.is_empty());
        n.parse::<u64>().expect("self-time is integral ns");
    }
    assert!(folded.lines().any(|l| l.starts_with("fetch.")));
}

// ---------------------------------------------------------------------------
// Drift monitor: a miscalibrated model is flagged on the report + gauge.
// ---------------------------------------------------------------------------

#[test]
fn miscalibrated_cost_model_trips_the_drift_flag() {
    let (_d, mut sys, id) = explain_system(small_blocks());
    let preds = sys.intermediates_of(&id).last().unwrap().clone();

    // Absurd bandwidth => predicted read cost is ~1e-15 s while the actual
    // read takes microseconds: the predicted/actual ratio collapses.
    sys.cost_model_mut().read_bandwidth = 1e18;
    for _ in 0..3 {
        sys.fetch_with_strategy(&preds, None, None, FetchStrategy::Read)
            .unwrap();
    }
    let r = sys.last_report().unwrap();
    assert_eq!(r.plan, PlanChoice::Read);
    assert!(r.drift_flagged, "report must carry the drift flag");
    let ratio = r.drift_ratio.expect("monitored plan records a ratio");
    assert!(ratio < 1.0 / sys.drift_monitor().tolerance());

    assert!(sys.drift_monitor().any_flagged());
    assert!(sys.drift_monitor().worst_drift() > sys.drift_monitor().tolerance());
    // The gauge mirrors the monitor for dashboards.
    let snap = sys.obs_snapshot();
    let gauge = snap.gauges.get("cost_model.drift").copied().unwrap_or(0.0);
    assert!(gauge > sys.drift_monitor().tolerance(), "gauge {gauge}");
    // Rendered report calls it out.
    assert!(sys
        .last_report()
        .unwrap()
        .render()
        .contains("MISCALIBRATED"));
}

#[test]
fn drift_ratio_and_flag_are_consistent_on_monitored_reports() {
    let (_d, mut sys, id) = explain_system(small_blocks());
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    // Whatever the ratio lands on with the default model, the report's flag
    // must agree with the monitor's tolerance band.
    for _ in 0..3 {
        sys.fetch_with_strategy(&preds, None, None, FetchStrategy::Read)
            .unwrap();
    }
    let r = sys.last_report().unwrap();
    assert!(r.drift_ratio.is_some());
    assert_eq!(r.drift_flagged, {
        let t = sys.drift_monitor().tolerance();
        let ratio = r.drift_ratio.unwrap();
        ratio > t || ratio < 1.0 / t
    });
}

// ---------------------------------------------------------------------------
// Config knobs: span ring capacity + report retention.
// ---------------------------------------------------------------------------

#[test]
fn span_ring_capacity_is_configurable() {
    let (_d, mut sys, id) = explain_system(MistiqueConfig {
        span_ring_capacity: 8,
        ..small_blocks()
    });
    assert_eq!(sys.obs().ring_capacity(), 8);
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    for _ in 0..4 {
        sys.fetch_with_strategy(&preds, None, None, FetchStrategy::Read)
            .unwrap();
    }
    let spans = sys.obs().recent_spans();
    assert!(spans.len() <= 8, "ring kept {} spans", spans.len());
    assert!(!spans.is_empty());
}

#[test]
fn report_retention_is_configurable_and_bounded() {
    let (_d, mut sys, id) = explain_system(MistiqueConfig {
        report_retention: 2,
        ..small_blocks()
    });
    let preds = sys.intermediates_of(&id).last().unwrap().clone();
    for _ in 0..5 {
        sys.fetch_with_strategy(&preds, None, Some(16), FetchStrategy::Read)
            .unwrap();
    }
    let reports = sys.query_reports(10);
    assert_eq!(reports.len(), 2, "retention bounds the ring");
    // The survivors are the most recent queries, still in order.
    assert_eq!(reports[1].seq, reports[0].seq + 1);
    assert_eq!(reports[1].seq, 4, "seq keeps counting past evictions");
}

#[test]
fn reopened_store_honours_span_ring_capacity() {
    let dir = tempfile::tempdir().unwrap();
    {
        let mut sys = Mistique::open(dir.path(), small_blocks()).unwrap();
        let data = Arc::new(ZillowData::generate(100, 1));
        let id = sys
            .register_trad(zillow_pipelines().remove(0), data)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        if sys.persist().is_err() {
            // Environments without a JSON serializer can't persist; the
            // config plumbing through `open` is covered above.
            return;
        }
    }
    let sys = Mistique::reopen(
        dir.path(),
        MistiqueConfig {
            span_ring_capacity: 16,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    assert_eq!(sys.obs().ring_capacity(), 16);
}
