//! Integration: the observability subsystem wired through the full system.
//!
//! Every hot path — chunk puts/gets, dedup, compression, cost decisions,
//! adaptive materialization, query caching — reports into one shared
//! registry, and the exported snapshot/report reflect the real work done.

use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig, Obs, StorageStrategy};
use mistique_nn::{vgg16_cifar, CifarLike};
use mistique_pipeline::templates::{template_stages, template_variants};
use mistique_pipeline::{Pipeline, ZillowData};

/// Two variants of Zillow template 1 over the same data: the shared stage
/// prefix guarantees exact dedup hits under `StorageStrategy::Dedup`.
fn trad_sys(storage: StorageStrategy) -> (tempfile::TempDir, Mistique, Vec<String>) {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            storage,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(ZillowData::generate(300, 1));
    let mut variants = template_variants(1);
    let mut ids = Vec::new();
    for i in 0..2 {
        let p = Pipeline::new(
            format!("P1v{i}"),
            template_stages(1),
            variants.remove(0),
            42,
        );
        let id = sys.register_trad(p, Arc::clone(&data)).unwrap();
        sys.log_intermediates(&id).unwrap();
        ids.push(id);
    }
    sys.flush().unwrap();
    (dir, sys, ids)
}

#[test]
fn trad_hot_paths_report_into_obs() {
    let (_d, mut sys, ids) = trad_sys(StorageStrategy::Dedup);

    let snap = sys.obs_snapshot();
    // Chunk writes: counts, bytes, latency histogram all advance together.
    assert!(snap.counter("store.put.count") > 0);
    assert!(snap.counter("store.put.bytes") > 0);
    assert_eq!(
        snap.histogram("store.put.ns").count,
        snap.counter("store.put.count")
    );
    // Partition lifecycle + per-codec compression attribution after flush.
    assert!(snap.counter("store.partitions.created") > 0);
    assert!(snap.counter("store.partitions.sealed") > 0);
    let codec_in: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("compress.") && k.ends_with(".in_bytes"))
        .map(|(_, v)| *v)
        .sum();
    assert!(codec_in > 0, "sealed partitions must attribute a codec");
    // Dedup counter mirrors the store's own accounting exactly.
    let stats = sys.store().stats();
    assert_eq!(snap.counter("store.dedup.exact_hits"), stats.dedup_hits);
    assert!(stats.dedup_hits > 0, "shared stage prefix should dedup");
    // Logging is traced, one span per pipeline.
    assert_eq!(snap.span("log_intermediates").count, 2);

    // A forced read exercises the chunk-get path and records a decision.
    let preds = sys.intermediates_of(&ids[0]).last().unwrap().clone();
    let r = sys
        .fetch_with_strategy(&preds, None, None, FetchStrategy::Read)
        .unwrap();
    assert_eq!(r.strategy, FetchStrategy::Read);
    let snap = sys.obs_snapshot();
    assert!(snap.counter("store.get.count") > 0);
    assert!(snap.counter("store.get.bytes") > 0);
    assert!(snap.counter("decision.read.count") >= 1);
    assert!(snap.span("fetch.read").count >= 1);
    assert_eq!(
        snap.histogram("decision.read.actual_ns").count,
        snap.counter("decision.read.count")
    );
    // Reads calibrate the cost model's bandwidth estimate.
    assert!(snap.counter("cost.observe_read.count") >= 1);
    assert!(snap.gauge("cost.read_bandwidth") > 0.0);
}

#[test]
fn dnn_checkpoints_report_dedup_hits() {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            storage: StorageStrategy::Dedup,
            row_block_size: 16,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(CifarLike::generate(32, 10, 7));
    let arch = Arc::new(vgg16_cifar(32));
    let mut ids = Vec::new();
    for e in 0..2 {
        let id = sys
            .register_dnn(Arc::clone(&arch), 3, e, Arc::clone(&data), 16)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        ids.push(id);
    }
    sys.flush().unwrap();

    let snap = sys.obs_snapshot();
    assert!(snap.counter("store.put.count") > 0);
    // Frozen conv layers dedup across checkpoints.
    assert!(snap.counter("store.dedup.exact_hits") > 0);
    assert_eq!(
        snap.counter("store.dedup.exact_hits"),
        sys.store().stats().dedup_hits
    );

    let first = sys.intermediates_of(&ids[0]).first().unwrap().clone();
    sys.fetch_with_strategy(&first, None, Some(8), FetchStrategy::Read)
        .unwrap();
    let snap = sys.obs_snapshot();
    assert!(snap.counter("store.get.count") > 0);
    assert!(snap.counter("decision.read.count") >= 1);
}

#[test]
fn adaptive_rerun_records_gamma_and_materialization() {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            storage: StorageStrategy::Adaptive { gamma_min: 1e-12 },
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(ZillowData::generate(200, 1));
    let mut variants = template_variants(1);
    let p = Pipeline::new("P1".to_string(), template_stages(1), variants.remove(0), 42);
    let id = sys.register_trad(p, data).unwrap();
    sys.log_intermediates(&id).unwrap();
    let preds = sys.intermediates_of(&id).last().unwrap().clone();

    let r = sys.get_intermediate(&preds, None, None).unwrap();
    assert_eq!(r.strategy, FetchStrategy::Rerun);

    let snap = sys.obs_snapshot();
    assert!(snap.counter("decision.rerun.count") >= 1);
    assert!(snap.span("fetch.rerun").count >= 1);
    assert!(snap.counter("adaptive.gamma_evals") >= 1);
    assert!(
        snap.counter("adaptive.materializations") >= 1,
        "gamma_min=1e-12 must clear the threshold"
    );
    assert!(snap.gauges.contains_key("adaptive.last_gamma"));
}

#[test]
fn snapshot_exports_as_json_and_text() {
    let (_d, sys, _ids) = trad_sys(StorageStrategy::Dedup);

    let report = sys.obs_report();
    assert!(report.contains("== counters =="));
    assert!(report.contains("== spans =="));
    assert!(report.contains("store.put.count"));

    let json = sys.obs_snapshot_json();
    for key in ["counters", "gauges", "histograms", "spans", "recent_spans"] {
        assert!(json.get(key).is_some(), "missing top-level key {key}");
    }
    let snap = sys.obs_snapshot();
    assert_eq!(
        json["counters"]["store.put.count"].as_u64(),
        Some(snap.counter("store.put.count"))
    );
    // obs_snapshot syncs derived gauges before exporting.
    assert_eq!(json["gauges"]["meta.models"].as_f64(), Some(2.0));
    assert!(json["recent_spans"].as_array().is_some());
}

#[test]
fn shared_obs_aggregates_across_systems() {
    // The bench binaries open several systems against one registry; counts
    // must accumulate rather than reset per instance.
    let obs = Obs::new();
    let mut puts = Vec::new();
    for seed in [1u64, 2] {
        let dir = tempfile::tempdir().unwrap();
        let mut sys =
            Mistique::open_with_obs(dir.path(), MistiqueConfig::default(), obs.clone()).unwrap();
        let data = Arc::new(ZillowData::generate(120, seed));
        let mut variants = template_variants(1);
        let p = Pipeline::new(
            "P1".to_string(),
            template_stages(1),
            variants.remove(0),
            seed,
        );
        let id = sys.register_trad(p, data).unwrap();
        sys.log_intermediates(&id).unwrap();
        puts.push(obs.snapshot().counter("store.put.count"));
    }
    assert!(puts[0] > 0);
    assert!(puts[1] > puts[0], "second system must add to the first");
}
