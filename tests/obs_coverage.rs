//! Coverage audit: every metric documented in DESIGN.md §14's inventory
//! must actually be registered by a mixed TRAD + DNN workload.
//!
//! The inventory is the contract between the code and the docs: this test
//! parses the `### Metric inventory` list out of DESIGN.md (brace groups
//! expanded, `<codec>` treated as a wildcard), runs a workload that walks
//! every subsystem — logging, dedup, sealing, reads, reruns, the query
//! cache, adaptive materialization, reclaim, persist/reopen recovery, the
//! flight recorder — and asserts each non-`rare` name shows up in the
//! merged snapshots with the documented instrument kind. A metric that is
//! renamed, dropped, or never exercised fails here before it silently
//! disappears from dashboards.

use std::collections::BTreeSet;
use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig, Snapshot, StorageStrategy};
use mistique_nn::{simple_cnn, CifarLike};
use mistique_pipeline::templates::{template_stages, template_variants};
use mistique_pipeline::{Pipeline, ZillowData};

/// One documented metric: name pattern, instrument kind, rare flag.
#[derive(Debug)]
struct Documented {
    pattern: String,
    kind: String,
    rare: bool,
}

/// Parse the `### Metric inventory` bullet list out of DESIGN.md.
fn documented_metrics() -> Vec<Documented> {
    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"))
        .expect("DESIGN.md readable");
    let section = design
        .split("### Metric inventory")
        .nth(1)
        .expect("DESIGN.md has a '### Metric inventory' section");
    let mut out = Vec::new();
    for line in section.lines() {
        if line.starts_with('#') {
            break; // next section
        }
        let Some(rest) = line.strip_prefix("- `") else {
            continue;
        };
        let (name, rest) = rest.split_once('`').expect("unterminated backtick");
        let paren = rest
            .split_once('(')
            .and_then(|(_, r)| r.split_once(')'))
            .map(|(inside, _)| inside)
            .unwrap_or_else(|| panic!("inventory line missing (kind): {line}"));
        let mut parts = paren.split(',').map(str::trim);
        let kind = parts.next().unwrap().to_string();
        let rare = parts.any(|p| p == "rare");
        assert!(
            matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
            "unknown instrument kind {kind:?} in: {line}"
        );
        for expanded in expand_braces(name) {
            out.push(Documented {
                pattern: expanded,
                kind: kind.clone(),
                rare,
            });
        }
    }
    out
}

/// Expand one `{a,b,c}` group (the inventory never nests them).
fn expand_braces(name: &str) -> Vec<String> {
    match (name.find('{'), name.find('}')) {
        (Some(open), Some(close)) if open < close => name[open + 1..close]
            .split(',')
            .map(|alt| format!("{}{}{}", &name[..open], alt, &name[close + 1..]))
            .collect(),
        _ => vec![name.to_string()],
    }
}

/// Does `name` match `pattern`, where `<codec>` stands for any non-empty
/// segment?
fn matches(pattern: &str, name: &str) -> bool {
    match pattern.split_once("<codec>") {
        None => pattern == name,
        Some((prefix, suffix)) => {
            name.len() > prefix.len() + suffix.len()
                && name.starts_with(prefix)
                && name.ends_with(suffix)
        }
    }
}

/// Union of all registered names of one kind across the snapshots.
fn names_of(snaps: &[Snapshot], kind: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for s in snaps {
        match kind {
            "counter" => out.extend(s.counters.keys().cloned()),
            "gauge" => out.extend(s.gauges.keys().cloned()),
            "histogram" => out.extend(s.histograms.keys().cloned()),
            _ => unreachable!(),
        }
    }
    out
}

fn zillow_variant(i: usize) -> Pipeline {
    let mut variants = template_variants(1);
    Pipeline::new(
        format!("P1v{i}"),
        template_stages(1),
        variants.remove(i),
        42,
    )
}

/// The mixed workload: touch every subsystem, collect every snapshot.
/// Returns the snapshots plus whether the persist/reopen leg ran (it
/// cannot in serialization-stubbed offline harnesses, and recovery
/// metrics only register on reopen).
fn run_mixed_workload() -> (Vec<Snapshot>, bool) {
    let mut reopened = false;
    let mut snaps = Vec::new();
    let data = Arc::new(ZillowData::generate(300, 1));

    // --- TRAD, dedup, query cache, persist/reopen -------------------------
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            storage: StorageStrategy::Dedup,
            query_cache_bytes: 1 << 20,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let mut ids = Vec::new();
    for i in 0..2 {
        let id = sys
            .register_trad(zillow_variant(i), Arc::clone(&data))
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        ids.push(id);
    }
    sys.flush().unwrap();
    let preds = sys.intermediates_of(&ids[0]).last().unwrap().clone();
    // Forced read + forced rerun register both decision paths and the
    // per-codec read attribution; a repeated cost-model fetch hits the
    // query cache and registers `decision.cached.*`.
    sys.fetch_with_strategy(&preds, None, None, FetchStrategy::Read)
        .unwrap();
    sys.fetch_with_strategy(&preds, None, None, FetchStrategy::Rerun)
        .unwrap();
    sys.get_intermediate(&preds, None, Some(32)).unwrap();
    sys.get_intermediate(&preds, None, Some(32)).unwrap();
    snaps.push(sys.obs_snapshot());
    let persisted = sys.persist();
    drop(sys);
    match persisted {
        Ok(()) => {
            // Recovery registers `store.recovery.*` (and journals the pass).
            let sys = Mistique::reopen(dir.path(), MistiqueConfig::default()).unwrap();
            assert!(sys.recovery_report().is_some());
            snaps.push(sys.obs_snapshot());
            reopened = true;
        }
        Err(e) => eprintln!("note: skipping reopen leg of the audit: {e}"),
    }

    // --- TRAD, adaptive materialization + reclaim -------------------------
    let dir2 = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir2.path(),
        MistiqueConfig {
            storage: StorageStrategy::Adaptive { gamma_min: 1e-12 },
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let id = sys
        .register_trad(zillow_variant(0), Arc::clone(&data))
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    let interms = sys.intermediates_of(&id);
    // Repeated queries drive γ over the threshold: evals, then a
    // materialization, then stored reads.
    for _ in 0..4 {
        for interm in &interms {
            sys.get_intermediate(interm, None, Some(64)).unwrap();
        }
    }
    // A 1-byte budget walks every materialized intermediate all the way
    // down the ladder: demotions, purges, and a compaction pass.
    sys.reclaim_to(1).unwrap();
    snaps.push(sys.obs_snapshot());

    // --- DNN ---------------------------------------------------------------
    let dir3 = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir3.path(),
        MistiqueConfig {
            row_block_size: 16,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let cifar = Arc::new(CifarLike::generate(16, 10, 7));
    let arch = Arc::new(simple_cnn(32));
    let id = sys
        .register_dnn(Arc::clone(&arch), 3, 0, Arc::clone(&cifar), 16)
        .unwrap();
    sys.log_intermediates(&id).unwrap();
    sys.flush().unwrap();
    let act = sys.intermediates_of(&id).last().unwrap().clone();
    sys.fetch_with_strategy(&act, None, Some(8), FetchStrategy::Read)
        .unwrap();
    snaps.push(sys.obs_snapshot());

    (snaps, reopened)
}

#[test]
fn every_documented_metric_is_registered_by_the_workload() {
    let documented = documented_metrics();
    assert!(
        documented.len() >= 40,
        "inventory parse looks broken: only {} entries",
        documented.len()
    );
    let (snaps, reopened) = run_mixed_workload();

    let mut missing = Vec::new();
    for doc in &documented {
        // `store.recovery.*` only registers on reopen; when the reopen leg
        // was skipped (stubbed serialization offline) it cannot appear.
        if !reopened && doc.pattern.starts_with("store.recovery.") {
            continue;
        }
        let names = names_of(&snaps, &doc.kind);
        let found = names.iter().any(|n| matches(&doc.pattern, n));
        if !found && !doc.rare {
            missing.push(format!("{} ({})", doc.pattern, doc.kind));
        }
    }
    assert!(
        missing.is_empty(),
        "metrics documented in DESIGN.md §14 but never registered by the \
         mixed workload (extend the workload or tag the line `rare`):\n  {}",
        missing.join("\n  ")
    );
}

#[test]
fn workload_metrics_with_engine_prefixes_are_documented() {
    // The reverse direction, for the stable prefixes: any registered
    // `store.*` / `decision.*` / `adaptive.*` / `qcache.*` / `telemetry.*`
    // name must be in the inventory, so new metrics can't dodge the docs.
    const AUDITED_PREFIXES: [&str; 8] = [
        "store.",
        "decision.",
        "adaptive.",
        "qcache.",
        "telemetry.",
        "compaction.",
        "cost.",
        "cost_model.",
    ];
    let documented = documented_metrics();
    let (snaps, _) = run_mixed_workload();
    let mut undocumented = Vec::new();
    for kind in ["counter", "gauge", "histogram"] {
        for name in names_of(&snaps, kind) {
            if !AUDITED_PREFIXES.iter().any(|p| name.starts_with(p)) {
                continue;
            }
            if !documented
                .iter()
                .any(|d| d.kind == kind && matches(&d.pattern, &name))
            {
                undocumented.push(format!("{name} ({kind})"));
            }
        }
    }
    assert!(
        undocumented.is_empty(),
        "metrics registered by the workload but absent from DESIGN.md §14:\n  {}",
        undocumented.join("\n  ")
    );
}

#[test]
fn brace_expansion_and_wildcards_behave() {
    assert_eq!(
        expand_braces("a.{x,y}.z"),
        vec!["a.x.z".to_string(), "a.y.z".to_string()]
    );
    assert_eq!(expand_braces("plain.name"), vec!["plain.name".to_string()]);
    assert!(matches("compress.<codec>.count", "compress.delta.count"));
    assert!(!matches("compress.<codec>.count", "compress..count"));
    assert!(!matches("compress.<codec>.count", "compress.delta.bytes"));
    assert!(matches("exact.name", "exact.name"));
}
