//! Integration: the full DNN path — checkpoints, quantized capture, frozen-
//! layer dedup, pooling alignment, and representation diagnostics.

use std::sync::Arc;

use mistique_core::{
    CaptureScheme, FetchStrategy, Mistique, MistiqueConfig, StorageStrategy, ValueScheme,
};
use mistique_nn::{simple_cnn, vgg16_cifar, CifarLike};

fn dnn_sys(
    capture: CaptureScheme,
    storage: StorageStrategy,
    epochs: u32,
) -> (tempfile::TempDir, Mistique, Vec<String>, Arc<CifarLike>) {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            storage,
            dnn_capture: capture,
            row_block_size: 16,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(CifarLike::generate(32, 10, 7));
    let arch = Arc::new(vgg16_cifar(32));
    let mut ids = Vec::new();
    for e in 0..epochs {
        let id = sys
            .register_dnn(Arc::clone(&arch), 3, e, Arc::clone(&data), 16)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        ids.push(id);
    }
    (dir, sys, ids, data)
}

#[test]
fn vgg16_has_21_layers() {
    let (_d, sys, ids, _) = dnn_sys(CaptureScheme::pool2(), StorageStrategy::Dedup, 1);
    assert_eq!(sys.intermediates_of(&ids[0]).len(), 21);
}

#[test]
fn frozen_conv_stack_dedups_across_checkpoints() {
    let (_d, sys, ids, _) = dnn_sys(CaptureScheme::pool2(), StorageStrategy::Dedup, 3);
    assert_eq!(ids.len(), 3);
    let stats = sys.store().stats();
    // 18 of 21 layers are frozen: checkpoints 2 and 3 dedup nearly all of
    // their conv chunks against checkpoint 1.
    assert!(
        stats.dedup_hits as f64 > stats.chunks_stored as f64,
        "expected most later-checkpoint chunks to dedup: {} hits vs {} stored",
        stats.dedup_hits,
        stats.chunks_stored
    );
}

#[test]
fn unfrozen_cnn_does_not_dedup() {
    let dir = tempfile::tempdir().unwrap();
    let mut sys = Mistique::open(
        dir.path(),
        MistiqueConfig {
            row_block_size: 16,
            ..MistiqueConfig::default()
        },
    )
    .unwrap();
    let data = Arc::new(CifarLike::generate(16, 10, 7));
    let arch = Arc::new(simple_cnn(32));
    for e in 0..2 {
        let id = sys
            .register_dnn(Arc::clone(&arch), 3, e, Arc::clone(&data), 16)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
    }
    // All layers train => checkpoint activations differ. (A few chunks may
    // still dedup — all-zero ReLU columns are byte-identical everywhere —
    // but unlike VGG16's frozen stack it must be a small minority.)
    let stats = sys.store().stats();
    assert!(
        stats.dedup_hits * 3 < stats.chunks_stored,
        "{} hits vs {} stored",
        stats.dedup_hits,
        stats.chunks_stored
    );
}

#[test]
fn quantized_capture_roundtrips_within_error_bounds() {
    for (capture, tol) in [
        (
            CaptureScheme {
                value: ValueScheme::Full,
                pool_sigma: None,
            },
            1e-7,
        ),
        (
            CaptureScheme {
                value: ValueScheme::Lp,
                pool_sigma: None,
            },
            2e-3,
        ),
        (
            CaptureScheme {
                value: ValueScheme::Kbit { bits: 8 },
                pool_sigma: None,
            },
            0.2,
        ),
    ] {
        let (_d, mut sys, ids, _) = dnn_sys(capture, StorageStrategy::Dedup, 1);
        let interm = format!("{}.layer16", ids[0]);
        let read = sys
            .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
            .unwrap();
        let rerun = sys
            .fetch_with_strategy(&interm, None, None, FetchStrategy::Rerun)
            .unwrap();
        let scale: f64 = rerun
            .frame
            .columns()
            .iter()
            .flat_map(|c| c.data.to_f64())
            .fold(0.0, |m: f64, v| m.max(v.abs()))
            .max(1e-12);
        for col in read.frame.columns() {
            let a = col.data.to_f64();
            let b = rerun.frame.column(&col.name).unwrap().data.to_f64();
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x - y).abs() <= tol * scale.max(1.0),
                    "{:?}: {x} vs {y} (tol {tol})",
                    capture
                );
            }
        }
    }
}

#[test]
fn threshold_capture_is_binary() {
    let capture = CaptureScheme {
        value: ValueScheme::Threshold { pct: 0.95 },
        pool_sigma: None,
    };
    let (_d, mut sys, ids, _) = dnn_sys(capture, StorageStrategy::Dedup, 1);
    let interm = format!("{}.layer6", ids[0]);
    let read = sys
        .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
        .unwrap();
    let mut ones = 0usize;
    let mut total = 0usize;
    for col in read.frame.columns() {
        for v in col.data.to_f64() {
            assert!(v == 0.0 || v == 1.0);
            total += 1;
            if v == 1.0 {
                ones += 1;
            }
        }
    }
    let frac = ones as f64 / total as f64;
    assert!(
        frac < 0.2,
        "~5% of activations above the 95th percentile, got {frac}"
    );
}

#[test]
fn pool32_collapses_maps_to_single_values() {
    let capture = CaptureScheme {
        value: ValueScheme::Full,
        pool_sigma: Some(32),
    };
    let (_d, sys, ids, _) = dnn_sys(capture, StorageStrategy::Dedup, 1);
    let meta = sys
        .metadata()
        .intermediate(&format!("{}.layer1", ids[0]))
        .unwrap()
        .clone();
    let (c, h, w) = meta.shape.unwrap();
    assert_eq!((h, w), (1, 1), "one value per activation map");
    assert_eq!(meta.columns.len(), c);
}

#[test]
fn svcca_between_checkpoints_detects_frozen_layers() {
    let (_d, mut sys, ids, _) = dnn_sys(CaptureScheme::pool2(), StorageStrategy::Dedup, 2);
    let frozen = sys
        .svcca(
            &format!("{}.layer11", ids[0]),
            &format!("{}.layer11", ids[1]),
            0.99,
        )
        .unwrap();
    assert!(
        frozen.mean_correlation() > 0.999,
        "frozen conv layer identical"
    );
    let head = sys
        .svcca(
            &format!("{}.layer21", ids[0]),
            &format!("{}.layer21", ids[1]),
            0.99,
        )
        .unwrap();
    assert!(
        head.mean_correlation() < 0.999,
        "trained head must differ: {}",
        head.mean_correlation()
    );
}

#[test]
fn partial_reads_are_prefixes_of_full_reads() {
    let (_d, mut sys, ids, _) = dnn_sys(CaptureScheme::pool2(), StorageStrategy::Dedup, 1);
    let interm = format!("{}.layer19", ids[0]);
    let full = sys
        .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
        .unwrap();
    let part = sys
        .fetch_with_strategy(&interm, None, Some(10), FetchStrategy::Read)
        .unwrap();
    assert_eq!(part.frame.n_rows(), 10);
    for col in part.frame.columns() {
        let p = col.data.to_f64();
        let f = full.frame.column(&col.name).unwrap().data.to_f64();
        assert_eq!(&p[..], &f[..10], "col {}", col.name);
    }
}
